// bench_replay_throughput: how fast is one timing replay - and how much
// faster is a group replay?
//
// The experiment engine (driver/engine.h) made the grid sweeps
// emulate-once/replay-many, so nearly all suite wall-clock now sits in the
// replay path: MemoryTraceSource feeding OooCore + EnergyAccountant. This
// bench isolates exactly that path on the Figure 4 suites: each workload is
// functionally emulated once into a TraceBuffer, then replayed back-to-back
// under the paper's shipping configuration (4-bit LUT + hardware swapping)
// until a minimum measurement window is filled. Since the "time once, steer
// many" layer (sim/group_buffer.h), each workload is additionally captured
// into an IssueGroupBuffer once and steered back-to-back through the
// lightweight GroupReplayer - the per-workload group_replays_per_sec /
// trace replays_per_sec ratio is the per-replay speedup of skipping the
// Tomasulo machinery. A final engine-level section times the full
// fig4-style scheme sweep (every scheme x hardware swap) three ways: group
// cache off (trace path), group cache on with per-scheme GroupReplayer
// walks (group path), and the "sweep once, score all" MultiSchemeReplayer
// pass that scores every score-expressible scheme in one capture walk
// (multi path, driver/multi_scheme.h) - the schemes-per-pass axis.
//
//   bench_replay_throughput [--out BENCH_replay.json] [--min-time-ms 300]
//                           [--scheme lut4|original|fullham]
//                           [--baseline prior.json] [--label NAME]
//                           [--jobs N]
//
// Metrics per workload and aggregated: traces-replayed/sec, group
// replays/sec, simulated cycles/sec and committed instructions/sec. Output
// is machine-readable JSON (schema mrisc-bench-replay/v3; v1/v2 files are
// accepted as --baseline) so the numbers can be tracked PR-over-PR;
// `--baseline` embeds a previous run's JSON and computes the speedup of
// aggregate replays/sec against it. See docs/performance.md.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "driver/engine.h"
#include "driver/multi_scheme.h"
#include "sim/emulator.h"
#include "sim/group_buffer.h"
#include "sim/trace_buffer.h"

#if !MRISC_OBS_TRACING
// The compile-out contract this bench's numbers rely on: a build configured
// with -DMRISC_OBS_TRACING=OFF must carry no tracer hooks in the timing
// core's hot loop (not even the null-pointer tests). kTraceHooksCompiledIn
// is the single source of truth (sim/ooo.h), so this fails the build if the
// flag ever stops reaching the core.
static_assert(!mrisc::sim::kTraceHooksCompiledIn,
              "MRISC_OBS_TRACING=0 build must compile trace hooks out");
#endif

namespace {

using namespace mrisc;
using Clock = std::chrono::steady_clock;

struct WorkloadRate {
  std::string name;
  std::uint64_t records = 0;          ///< trace length (dynamic instructions)
  std::uint64_t cycles_per_replay = 0;
  std::uint64_t replays = 0;
  double seconds = 0.0;
  std::uint64_t group_replays = 0;    ///< GroupReplayer passes (v2)
  double group_seconds = 0.0;

  [[nodiscard]] double replays_per_sec() const {
    return seconds > 0 ? static_cast<double>(replays) / seconds : 0.0;
  }
  [[nodiscard]] double group_replays_per_sec() const {
    return group_seconds > 0
               ? static_cast<double>(group_replays) / group_seconds
               : 0.0;
  }
  [[nodiscard]] double sim_cycles_per_sec() const {
    return seconds > 0 ? static_cast<double>(replays * cycles_per_replay) /
                             seconds
                       : 0.0;
  }
  [[nodiscard]] double sim_instrs_per_sec() const {
    return seconds > 0
               ? static_cast<double>(replays * records) / seconds
               : 0.0;
  }
};

/// Time back-to-back replays of one recorded trace until `min_time_ms` of
/// wall clock is filled (at least two replays, so one-off warmup effects
/// are amortized), then the same window of group replays over a one-time
/// capture of the trace's issue groups.
WorkloadRate measure(const workloads::Workload& workload,
                     const driver::ExperimentConfig& config, int min_time_ms) {
  WorkloadRate rate;
  rate.name = workload.name;

  sim::Emulator emu(workload.assembled());
  sim::EmulatorTraceSource record_source(emu);
  sim::TraceBuffer buffer;
  buffer.record_all(record_source);
  rate.records = buffer.size();

  // Warmup replay (also pins cycles_per_replay for the report).
  {
    sim::MemoryTraceSource source(buffer);
    const driver::RunResult r =
        driver::replay_trace(source, workload.name, config);
    rate.cycles_per_replay = r.pipeline.cycles;
  }

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(min_time_ms);
  auto now = start;
  do {
    sim::MemoryTraceSource source(buffer);
    (void)driver::replay_trace(source, workload.name, config);
    ++rate.replays;
    now = Clock::now();
  } while (now < deadline || rate.replays < 2);
  rate.seconds = std::chrono::duration<double>(now - start).count();

  // Group replays: time once (the capture, not timed into the loop), steer
  // back to back. Same policies, accountant and result extraction - only
  // the Tomasulo machinery is skipped.
  sim::MemoryTraceSource capture_source(buffer);
  const sim::IssueGroupBuffer groups =
      sim::capture_groups(config.machine, capture_source);
  {
    (void)driver::replay_groups(groups, workload.name, config);  // warmup
  }
  const auto gstart = Clock::now();
  const auto gdeadline = gstart + std::chrono::milliseconds(min_time_ms);
  auto gnow = gstart;
  do {
    (void)driver::replay_groups(groups, workload.name, config);
    ++rate.group_replays;
    gnow = Clock::now();
  } while (gnow < gdeadline || rate.group_replays < 2);
  rate.group_seconds = std::chrono::duration<double>(gnow - gstart).count();
  return rate;
}

/// Engine-level fig4-style sweep (every scheme x hardware swap over the
/// suite) timed three ways - group cache off (trace path), group cache on
/// with per-scheme walks (group path), and the all-schemes pass (multi
/// path); the trace cache is pre-warmed in every mode so the comparison
/// isolates the steering sweep.
struct SteerSweep {
  std::size_t schemes = 0;
  std::size_t schemes_per_pass = 1;  ///< lanes one multi-path pass steers
  double trace_path_seconds = 0.0;
  double group_path_seconds = 0.0;
  double multi_path_seconds = 0.0;

  [[nodiscard]] double speedup() const {
    return group_path_seconds > 0 ? trace_path_seconds / group_path_seconds
                                  : 0.0;
  }
  [[nodiscard]] double multi_speedup() const {
    return multi_path_seconds > 0 ? group_path_seconds / multi_path_seconds
                                  : 0.0;
  }
};

SteerSweep measure_steer_sweep(std::span<const workloads::Workload> suite,
                               int jobs) {
  SteerSweep sweep;
  auto make_plan = [&] {
    driver::ExperimentPlan plan;
    plan.add_suite(suite);
    for (const driver::Scheme scheme : driver::kAllSchemesExtended) {
      driver::ExperimentConfig config;
      config.scheme = scheme;
      config.swap = driver::SwapMode::kHardware;
      plan.add_cell(driver::to_string(scheme), config);
    }
    return plan;
  };
  auto warm_plan = [&] {
    driver::ExperimentPlan plan;
    plan.add_suite(suite);
    driver::ExperimentConfig config;
    config.scheme = driver::Scheme::kOriginal;
    config.swap = driver::SwapMode::kHardware;
    plan.add_cell("warm", config);
    return plan;
  };
  sweep.schemes = std::size(driver::kAllSchemesExtended);

  struct ModeSetup {
    bool group_replay;
    bool multi_scheme;
    double SteerSweep::* slot;
  };
  constexpr ModeSetup kModes[] = {
      {false, false, &SteerSweep::trace_path_seconds},
      {true, false, &SteerSweep::group_path_seconds},
      {true, true, &SteerSweep::multi_path_seconds},
  };
  for (const ModeSetup& mode : kModes) {
    driver::ExperimentEngine engine(jobs);
    engine.set_group_replay(mode.group_replay);
    engine.set_multi_scheme(mode.multi_scheme);
    // Untimed warm run: fills the trace cache, and (capture-on-replay) the
    // group cache too, so the timed sweep is pure steering work on every
    // path.
    engine.run(warm_plan());
    const auto start = Clock::now();
    engine.run(make_plan());
    sweep.*mode.slot =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (engine.multischeme_passes() > 0)
      sweep.schemes_per_pass = static_cast<std::size_t>(
          engine.multischeme_lanes() / engine.multischeme_passes());
  }
  return sweep;
}

/// Pull `"aggregate": { ... "replays_per_sec": X ... }` out of a previous
/// run's JSON without a JSON library: find the aggregate object, then the
/// key inside it. Returns 0 when not found.
double extract_aggregate_rate(const std::string& json) {
  const auto agg = json.find("\"aggregate\"");
  if (agg == std::string::npos) return 0.0;
  const auto key = json.find("\"replays_per_sec\"", agg);
  if (key == std::string::npos) return 0.0;
  const auto colon = json.find(':', key);
  if (colon == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_replay.json";
  std::string baseline_path;
  std::string manifest_path;
  std::string label = "current";
  std::string scheme_name = "lut4";
  int min_time_ms = 300;
  int jobs = bench::parse_jobs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else if (arg == "--baseline") {
      if (const char* v = next()) baseline_path = v;
    } else if (arg == "--label") {
      if (const char* v = next()) label = v;
    } else if (arg == "--scheme") {
      if (const char* v = next()) scheme_name = v;
    } else if (arg == "--min-time-ms") {
      if (const char* v = next()) min_time_ms = std::atoi(v);
    } else if (arg == "--manifest") {
      if (const char* v = next()) manifest_path = v;
    } else if (arg == "--jobs") {
      if (const char* v = next()) jobs = std::atoi(v);
    } else {
      std::fprintf(stderr,
                   "usage: bench_replay_throughput [--out FILE] "
                   "[--baseline FILE] [--label NAME] [--scheme S] "
                   "[--min-time-ms N] [--manifest FILE] [--jobs N]\n");
      return 2;
    }
  }

  bench::ManifestScope manifest("bench_replay_throughput", 1);
  if (!manifest_path.empty()) manifest.set_path(manifest_path);

  driver::ExperimentConfig config;
  config.swap = driver::SwapMode::kHardware;
  if (scheme_name == "lut4") {
    config.scheme = driver::Scheme::kLut4;
  } else if (scheme_name == "original") {
    config.scheme = driver::Scheme::kOriginal;
  } else if (scheme_name == "fullham") {
    config.scheme = driver::Scheme::kFullHam;
  } else {
    std::fprintf(stderr, "unknown --scheme '%s'\n", scheme_name.c_str());
    return 2;
  }

  const auto suite_cfg = mrisc::bench::suite_config();
  const auto suite = workloads::full_suite(suite_cfg);

  std::vector<WorkloadRate> rates;
  std::uint64_t total_replays = 0, weighted_cycles = 0, weighted_instrs = 0;
  std::uint64_t total_group_replays = 0;
  double total_seconds = 0.0, total_group_seconds = 0.0;
  for (const auto& workload : suite) {
    const WorkloadRate rate = measure(workload, config, min_time_ms);
    std::printf("%-12s %9llu records  %9llu cycles/replay  "
                "%8.2f replays/s  %8.2f group-replays/s  %8.2f Mcycles/s\n",
                rate.name.c_str(),
                static_cast<unsigned long long>(rate.records),
                static_cast<unsigned long long>(rate.cycles_per_replay),
                rate.replays_per_sec(), rate.group_replays_per_sec(),
                rate.sim_cycles_per_sec() / 1e6);
    total_replays += rate.replays;
    weighted_cycles += rate.replays * rate.cycles_per_replay;
    weighted_instrs += rate.replays * rate.records;
    total_seconds += rate.seconds;
    total_group_replays += rate.group_replays;
    total_group_seconds += rate.group_seconds;
    rates.push_back(rate);
  }

  const double agg_replays_per_sec =
      total_seconds > 0 ? static_cast<double>(total_replays) / total_seconds
                        : 0.0;
  const double agg_cycles_per_sec =
      total_seconds > 0 ? static_cast<double>(weighted_cycles) / total_seconds
                        : 0.0;
  const double agg_instrs_per_sec =
      total_seconds > 0 ? static_cast<double>(weighted_instrs) / total_seconds
                        : 0.0;
  const double agg_group_replays_per_sec =
      total_group_seconds > 0
          ? static_cast<double>(total_group_replays) / total_group_seconds
          : 0.0;
  const double group_speedup = agg_replays_per_sec > 0
                                   ? agg_group_replays_per_sec /
                                         agg_replays_per_sec
                                   : 0.0;
  std::printf("aggregate: %.2f replays/s, %.2f group-replays/s (%.2fx), "
              "%.2f Msim-cycles/s, %.2f Msim-instrs/s over %zu workloads\n",
              agg_replays_per_sec, agg_group_replays_per_sec, group_speedup,
              agg_cycles_per_sec / 1e6, agg_instrs_per_sec / 1e6,
              rates.size());

  const SteerSweep sweep = measure_steer_sweep(suite, jobs);
  std::printf("steer sweep (%zu schemes x hardware, jobs=%d): "
              "trace path %.3fs, group path %.3fs (%.2fx), "
              "multi path %.3fs (%.2fx more, %zu schemes/pass)\n",
              sweep.schemes, jobs, sweep.trace_path_seconds,
              sweep.group_path_seconds, sweep.speedup(),
              sweep.multi_path_seconds, sweep.multi_speedup(),
              sweep.schemes_per_pass);

  std::string baseline_json;
  double baseline_rate = 0.0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "warning: cannot read baseline %s\n",
                   baseline_path.c_str());
    } else {
      std::ostringstream ss;
      ss << in.rdbuf();
      baseline_json = ss.str();
      baseline_rate = extract_aggregate_rate(baseline_json);
      if (baseline_rate > 0)
        std::printf("speedup vs baseline (%s): %.2fx replays/s\n",
                    baseline_path.c_str(),
                    agg_replays_per_sec / baseline_rate);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"schema\": \"mrisc-bench-replay/v3\",\n";
  out << "  \"label\": \"" << json_escape(label) << "\",\n";
  out << "  \"scheme\": \"" << json_escape(scheme_name)
      << "\",\n  \"swap\": \"hardware\",\n";
  // Whether this binary carries the obs tracing hooks (MRISC_OBS_TRACING):
  // hooks-off numbers are the zero-instrumentation reference, hooks-on pays
  // one never-taken branch per hook site.
  out << "  \"trace_hooks\": " << (sim::kTraceHooksCompiledIn ? "true" : "false")
      << ",\n";
  char buf[256];
  std::snprintf(buf, sizeof buf, "  \"scale\": %g,\n", suite_cfg.scale);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"min_time_ms\": %d,\n", min_time_ms);
  out << buf;
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const WorkloadRate& r = rates[i];
    char big[512];
    std::snprintf(big, sizeof big,
                  "    {\"name\": \"%s\", \"records\": %llu, "
                  "\"cycles_per_replay\": %llu, \"replays\": %llu, "
                  "\"seconds\": %.6f, \"replays_per_sec\": %.3f, "
                  "\"group_replays\": %llu, \"group_seconds\": %.6f, "
                  "\"group_replays_per_sec\": %.3f, "
                  "\"sim_cycles_per_sec\": %.1f, "
                  "\"sim_instrs_per_sec\": %.1f}%s\n",
                  json_escape(r.name).c_str(),
                  static_cast<unsigned long long>(r.records),
                  static_cast<unsigned long long>(r.cycles_per_replay),
                  static_cast<unsigned long long>(r.replays), r.seconds,
                  r.replays_per_sec(),
                  static_cast<unsigned long long>(r.group_replays),
                  r.group_seconds, r.group_replays_per_sec(),
                  r.sim_cycles_per_sec(), r.sim_instrs_per_sec(),
                  i + 1 < rates.size() ? "," : "");
    out << big;
  }
  out << "  ],\n";
  // "replays_per_sec" stays the first key in "aggregate" so v1 readers
  // (extract_aggregate_rate above, older bench-diff builds) keep parsing
  // v2 files.
  char big[512];
  std::snprintf(big, sizeof big,
                "  \"aggregate\": {\"replays\": %llu, \"seconds\": %.6f, "
                "\"replays_per_sec\": %.3f, \"group_replays\": %llu, "
                "\"group_seconds\": %.6f, \"group_replays_per_sec\": %.3f, "
                "\"group_speedup\": %.3f, \"sim_cycles_per_sec\": %.1f, "
                "\"sim_instrs_per_sec\": %.1f},\n",
                static_cast<unsigned long long>(total_replays), total_seconds,
                agg_replays_per_sec,
                static_cast<unsigned long long>(total_group_replays),
                total_group_seconds, agg_group_replays_per_sec, group_speedup,
                agg_cycles_per_sec, agg_instrs_per_sec);
  out << big;
  // v2 key order is preserved; the v3 multi-path keys are appended after
  // "speedup" so v2 readers keep parsing v3 files.
  std::snprintf(big, sizeof big,
                "  \"steer_sweep\": {\"schemes\": %zu, \"jobs\": %d, "
                "\"trace_path_seconds\": %.6f, \"group_path_seconds\": %.6f, "
                "\"speedup\": %.3f, \"schemes_per_pass\": %zu, "
                "\"multi_path_seconds\": %.6f, \"multi_speedup\": %.3f}",
                sweep.schemes, jobs, sweep.trace_path_seconds,
                sweep.group_path_seconds, sweep.speedup(),
                sweep.schemes_per_pass, sweep.multi_path_seconds,
                sweep.multi_speedup());
  out << big;
  if (baseline_rate > 0) {
    std::snprintf(buf, sizeof buf,
                  ",\n  \"baseline_replays_per_sec\": %.3f,\n"
                  "  \"speedup\": %.3f,\n  \"baseline\": ",
                  baseline_rate, agg_replays_per_sec / baseline_rate);
    out << buf << baseline_json;
  }
  out << "\n}\n";
  std::fprintf(stderr, "[json written to %s]\n", out_path.c_str());

  manifest.note("scheme", scheme_name);
  manifest.note("trace_hooks", sim::kTraceHooksCompiledIn ? "true" : "false");
  manifest.note("out", out_path);
  char agg_buf[64];
  std::snprintf(agg_buf, sizeof agg_buf, "%.3f", agg_replays_per_sec);
  manifest.note("replays_per_sec", agg_buf);
  std::snprintf(agg_buf, sizeof agg_buf, "%.3f", agg_group_replays_per_sec);
  manifest.note("group_replays_per_sec", agg_buf);
  std::snprintf(agg_buf, sizeof agg_buf, "%.3f", sweep.speedup());
  manifest.note("steer_sweep_speedup", agg_buf);
  std::snprintf(agg_buf, sizeof agg_buf, "%.3f", sweep.multi_speedup());
  manifest.note("steer_sweep_multi_speedup", agg_buf);
  std::snprintf(agg_buf, sizeof agg_buf, "%zu", sweep.schemes_per_pass);
  manifest.note("schemes_per_pass", agg_buf);
  for (const WorkloadRate& r : rates)
    manifest.add_cell(r.name, r.seconds, r.replays);
  return 0;
}
