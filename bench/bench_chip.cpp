// Reproduces the paper's section 1 whole-chip arithmetic: "around 22% of
// the processor's power is consumed in the execution units. Thus, the
// decrease in total chip power is roughly 4%." We run the full suite under
// the recommended configuration (4-bit LUT + hardware swapping) and report
// the activity-based chip breakdown plus the end-to-end chip reduction.
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/experiment.h"
#include "power/chip.h"

int main() {
  using namespace mrisc;
  bench::ManifestScope manifest("bench_chip", 0);
  const auto suite = workloads::full_suite(bench::suite_config());

  driver::ExperimentConfig base;
  base.scheme = driver::Scheme::kOriginal;
  stats::BitPatternCollector patterns;
  stats::OccupancyAggregator occupancy;
  const auto original = driver::run_suite(suite, base, &patterns, &occupancy);

  driver::ExperimentConfig steered;
  steered.scheme = driver::Scheme::kLut4;
  steered.swap = driver::SwapMode::kHardware;
  steered.lut_from_paper = false;
  steered.ialu_stats = patterns.case_stats(
      isa::FuClass::kIalu, occupancy.multi_issue_prob(isa::FuClass::kIalu));
  steered.fpau_stats = patterns.case_stats(
      isa::FuClass::kFpau, occupancy.multi_issue_prob(isa::FuClass::kFpau));
  const auto tuned = driver::run_suite(suite, steered);

  const auto before =
      power::chip_breakdown(original.pipeline, original.fu_energy());
  const auto after = power::chip_breakdown(tuned.pipeline, tuned.fu_energy());

  std::puts(before.to_string().c_str());
  std::printf(
      "\nexecution units' share of chip power: %.1f%% (paper cites ~22%%)\n",
      100.0 * before.fu_share());
  std::printf("IALU switching reduction: %.1f%%, FPAU: %.1f%%\n",
              driver::reduction_pct(original, tuned, isa::FuClass::kIalu),
              driver::reduction_pct(original, tuned, isa::FuClass::kFpau));
  std::printf(
      "whole-chip energy reduction: %.2f%% (paper's arithmetic: ~4%%)\n",
      power::chip_reduction_pct(before, after));
  return 0;
}
