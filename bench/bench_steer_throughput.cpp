// bench_steer_throughput: wall-clock of the full scheme sweep - trace path
// vs group path vs all-schemes path.
//
// The acceptance question for the engine's steering cache tiers is end to
// end: how much faster does the fig4-style scheme sweep - every scheme in
// kAllSchemesExtended crossed with hardware swapping over the Figure 4
// suite - finish as each tier comes on?
//
//   trace path  every cell re-runs the full Tomasulo core over the cached
//               trace (group cache off),
//   group path  "time once, steer many": each cell steers a cached
//               issue-group capture through its own GroupReplayer
//               (PR 5's fast path; all-schemes pass off),
//   multi path  "sweep once, score all": all cells of a unit that share the
//               capture ride ONE MultiSchemeReplayer walk
//               (driver/multi_scheme.h), so one pass steers every scheme in
//               the sweep.
//
// The schemes-per-pass axis makes the third tier legible: the trace and
// group paths steer 1 scheme per pass over the workload, the multi path
// steers the whole sweep per pass (reported from the engine's
// multischeme.lanes / multischeme.passes counters). This bench times the
// same sweep all three ways on the same ExperimentEngine configuration
// (trace cache pre-warmed in every mode so emulation cost is excluded),
// repeats the measurement, and reports the best-of-N wall clock per mode
// plus the speedups. It also cross-checks that all three modes render
// byte-identical result tables - a perf number for a wrong answer is
// worthless.
//
// A second axis times the whole PROCESS lifecycle rather than the warmed
// sweep: `cold start` builds a fresh engine per repetition and pays
// emulation + capture + steering, the way a new process does; `store
// start` builds an equally fresh engine over a warm capture store
// (src/store/) and pays only mmap + steering - zero emulations, zero
// captures, asserted per repetition. store_speedup = cold / store is the
// "zero-copy cold start" number docs/performance.md quotes.
//
//   bench_steer_throughput [--out BENCH_steer.json] [--repeat 3]
//                          [--jobs N] [--manifest FILE] [--baseline FILE]
//                          [--store DIR]
//
// Output: human-readable summary on stdout and machine-readable JSON
// (schema mrisc-bench-steer/v3; v1/v2 files are accepted as --baseline) for
// PR-over-PR tracking; `--baseline` embeds a previous run's JSON and
// computes the full-sweep speedup of this run's fastest path against the
// baseline's group path. The manifest (docs/observability.md) carries the
// engine's phase profile (including the store and multisteer phases) and
// the engine.multischeme.* / engine.store.* counters. See
// docs/performance.md.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "driver/engine.h"
#include "driver/multi_scheme.h"
#include "store/capture_store.h"
#include "util/table.h"

namespace {

using namespace mrisc;
using Clock = std::chrono::steady_clock;

/// The measured sweep: every extended scheme x hardware swapping over the
/// whole suite (one column of Figure 4, widened to the shipped scheme set).
driver::ExperimentPlan sweep_plan(const std::vector<workloads::Workload>& suite) {
  driver::ExperimentPlan plan;
  plan.add_suite(suite);
  for (const driver::Scheme scheme : driver::kAllSchemesExtended) {
    driver::ExperimentConfig config;
    config.scheme = scheme;
    config.swap = driver::SwapMode::kHardware;
    plan.add_cell(driver::to_string(scheme), config);
  }
  return plan;
}

/// One cell is enough to emulate + record every suite trace, so the timed
/// runs below never pay emulation or capture-input cost.
driver::ExperimentPlan warm_plan(const std::vector<workloads::Workload>& suite) {
  driver::ExperimentPlan plan;
  plan.add_suite(suite);
  driver::ExperimentConfig config;
  config.scheme = driver::Scheme::kOriginal;
  config.swap = driver::SwapMode::kHardware;
  plan.add_cell("warm", config);
  return plan;
}

/// Render the sweep's per-cell energies so the modes can be compared byte
/// for byte.
std::string render(const std::vector<driver::CellResult>& cells) {
  util::AsciiTable table({"Scheme", "IALU bits", "FPAU bits", "Cycles"});
  std::size_t i = 0;
  for (const driver::Scheme scheme : driver::kAllSchemesExtended) {
    const driver::CellResult& cell = cells[i++];
    table.add_row({std::string(driver::to_string(scheme)),
                   std::to_string(cell.total.ialu.switched_bits),
                   std::to_string(cell.total.fpau.switched_bits),
                   std::to_string(cell.total.pipeline.cycles)});
  }
  return table.to_string("steer sweep");
}

/// The engine configurations the sweep is timed under: three warmed-cache
/// paths plus the two process-lifecycle starts.
enum class Mode { kTracePath, kGroupPath, kMultiPath, kColdStart, kStoreStart };

const char* mode_key(Mode mode) {
  switch (mode) {
    case Mode::kTracePath: return "trace_path";
    case Mode::kGroupPath: return "group_path";
    case Mode::kMultiPath: return "multi_path";
    case Mode::kColdStart: return "cold_start";
    case Mode::kStoreStart: return "store_start";
  }
  return "?";
}

struct ModeTiming {
  double best_seconds = 0.0;
  std::vector<double> runs;
  std::string rendered;
  std::uint64_t emulations = 0;
  std::uint64_t group_replays = 0;
  std::uint64_t captures = 0;
  std::uint64_t multischeme_passes = 0;
  std::size_t schemes_per_pass = 1;  ///< lanes steered per capture walk
};

ModeTiming time_mode(const std::vector<workloads::Workload>& suite, int jobs,
                     Mode mode, int repeat) {
  ModeTiming timing;
  driver::ExperimentEngine engine(jobs);
  engine.set_group_replay(mode != Mode::kTracePath);
  engine.set_multi_scheme(mode == Mode::kMultiPath);
  // Untimed warm run, repeated after every cache clear below: it fills the
  // trace cache, and - because the engine records issue groups as a
  // byproduct of any full-core replay while the group path is on
  // (capture-on-replay) - the group cache too. The timed sweep therefore
  // measures pure steering work on every path; the one timing-core walk per
  // workload happens exactly once, in the warm run, on every mode equally.
  engine.run(warm_plan(suite));
  for (int r = 0; r < repeat; ++r) {
    engine.clear_cache();
    engine.run(warm_plan(suite));
    const auto start = Clock::now();
    const auto cells = engine.run(sweep_plan(suite));
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    timing.runs.push_back(seconds);
    if (timing.best_seconds == 0.0 || seconds < timing.best_seconds)
      timing.best_seconds = seconds;
    if (r == 0) timing.rendered = render(cells);
  }
  timing.group_replays = engine.group_replays();
  timing.captures = engine.captures();
  timing.multischeme_passes = engine.multischeme_passes();
  if (timing.multischeme_passes > 0)
    timing.schemes_per_pass = static_cast<std::size_t>(
        engine.multischeme_lanes() / timing.multischeme_passes);
  return timing;
}

/// Process-lifecycle timing: every repetition builds a FRESH engine - no
/// in-process cache survives, exactly like a new process - and runs the
/// full sweep. With `store_dir` empty the run is truly cold (emulate +
/// capture + steer); with a warm store it should cost only mmap + steer,
/// and any emulation or capture paid is counted so the caller can refuse
/// to report a number for a broken zero-work claim.
ModeTiming time_start(const std::vector<workloads::Workload>& suite, int jobs,
                      int repeat, const std::string& store_dir) {
  ModeTiming timing;
  timing.schemes_per_pass = std::size(driver::kAllSchemesExtended);
  for (int r = 0; r < repeat; ++r) {
    driver::ExperimentEngine engine(jobs);
    if (!store_dir.empty())
      engine.set_capture_store(
          std::make_shared<mrisc::store::CaptureStore>(store_dir));
    const auto start = Clock::now();
    const auto cells = engine.run(sweep_plan(suite));
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    timing.runs.push_back(seconds);
    if (timing.best_seconds == 0.0 || seconds < timing.best_seconds)
      timing.best_seconds = seconds;
    if (r == 0) timing.rendered = render(cells);
    timing.emulations += engine.emulations();
    timing.captures += engine.captures();
    timing.group_replays += engine.group_replays();
    timing.multischeme_passes += engine.multischeme_passes();
  }
  return timing;
}

/// Pull the baseline's group-path seconds out of a previous run's JSON
/// without a JSON library. Understands this bench's own schema (a
/// `"group_path"` object holding `"best_seconds"`, v1 or v2) and falls back
/// to bench_replay_throughput's steer_sweep key (`"group_path_seconds"`,
/// any schema version) - the replay bench is where the sweep timing lived
/// before this bench existed, so old checkouts only have that file.
/// Returns 0 when neither is found.
double extract_group_path_best(const std::string& json) {
  const auto obj = json.find("\"group_path\"");
  if (obj != std::string::npos) {
    const auto key = json.find("\"best_seconds\"", obj);
    if (key == std::string::npos) return 0.0;
    const auto colon = json.find(':', key);
    if (colon == std::string::npos) return 0.0;
    return std::strtod(json.c_str() + colon + 1, nullptr);
  }
  const auto key = json.find("\"group_path_seconds\"");
  if (key == std::string::npos) return 0.0;
  const auto colon = json.find(':', key);
  if (colon == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_steer.json";
  std::string manifest_path;
  std::string baseline_path;
  std::string store_dir;
  int repeat = 3;
  int jobs = mrisc::bench::parse_jobs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else if (arg == "--repeat") {
      if (const char* v = next()) repeat = std::atoi(v);
    } else if (arg == "--manifest") {
      if (const char* v = next()) manifest_path = v;
    } else if (arg == "--baseline") {
      if (const char* v = next()) baseline_path = v;
    } else if (arg == "--store") {
      if (const char* v = next()) store_dir = v;
    } else if (arg == "--jobs") {
      (void)next();  // consumed by parse_jobs
    } else {
      std::fprintf(stderr,
                   "usage: bench_steer_throughput [--out FILE] [--repeat N] "
                   "[--jobs N] [--manifest FILE] [--baseline FILE] "
                   "[--store DIR]\n");
      return 2;
    }
  }
  if (repeat < 1) repeat = 1;
  // The capture-store directory for the cold-vs-warm axis. CI points this
  // at its cross-run cache; by default it lives next to the JSON.
  if (store_dir.empty()) store_dir = out_path + ".store";

  const auto suite_cfg = bench::suite_config();
  const auto suite = workloads::full_suite(suite_cfg);

  driver::ExperimentEngine profile_engine(jobs);
  bench::ManifestScope manifest("bench_steer_throughput", profile_engine.jobs(),
                                &profile_engine);
  if (!manifest_path.empty()) manifest.set_path(manifest_path);

  const ModeTiming trace_mode =
      time_mode(suite, jobs, Mode::kTracePath, repeat);
  const ModeTiming group_mode =
      time_mode(suite, jobs, Mode::kGroupPath, repeat);
  const ModeTiming multi_mode =
      time_mode(suite, jobs, Mode::kMultiPath, repeat);
  if (trace_mode.rendered != group_mode.rendered ||
      group_mode.rendered != multi_mode.rendered) {
    std::fprintf(stderr,
                 "FATAL: trace/group/multi sweeps disagree\n%s\n%s\n%s\n",
                 trace_mode.rendered.c_str(), group_mode.rendered.c_str(),
                 multi_mode.rendered.c_str());
    return 1;
  }
  std::fputs(multi_mode.rendered.c_str(), stdout);

  // The process-lifecycle axis. The first store-start pass doubles as the
  // store warm-up when the directory is cold (it publishes while it
  // computes), so run it once untimed, then measure.
  const ModeTiming cold_mode = time_start(suite, jobs, repeat, "");
  (void)time_start(suite, jobs, /*repeat=*/1, store_dir);  // warm the store
  const ModeTiming store_mode = time_start(suite, jobs, repeat, store_dir);
  if (store_mode.rendered != multi_mode.rendered ||
      cold_mode.rendered != multi_mode.rendered) {
    std::fprintf(stderr, "FATAL: store-served sweep disagrees\n%s\n%s\n",
                 store_mode.rendered.c_str(), cold_mode.rendered.c_str());
    return 1;
  }
  if (store_mode.emulations != 0 || store_mode.captures != 0) {
    std::fprintf(stderr,
                 "FATAL: warm-store start was not free: %llu emulations, "
                 "%llu captures\n",
                 static_cast<unsigned long long>(store_mode.emulations),
                 static_cast<unsigned long long>(store_mode.captures));
    return 1;
  }

  // One profiled multi-path run so the manifest carries the capture /
  // multisteer phase breakdown and the engine.multischeme.* counters.
  profile_engine.run(sweep_plan(suite));

  const double speedup = group_mode.best_seconds > 0
                             ? trace_mode.best_seconds / group_mode.best_seconds
                             : 0.0;
  const double multi_speedup =
      multi_mode.best_seconds > 0
          ? group_mode.best_seconds / multi_mode.best_seconds
          : 0.0;
  const double full_speedup =
      multi_mode.best_seconds > 0
          ? trace_mode.best_seconds / multi_mode.best_seconds
          : 0.0;
  std::printf("schemes: %zu x hardware swap over %zu workloads, jobs=%d, "
              "best of %d\n",
              std::size(driver::kAllSchemesExtended), suite.size(),
              profile_engine.jobs(), repeat);
  std::printf("trace path: %.3fs (1 scheme/pass)   "
              "group path: %.3fs (1 scheme/pass)   "
              "multi path: %.3fs (%zu schemes/pass)\n",
              trace_mode.best_seconds, group_mode.best_seconds,
              multi_mode.best_seconds, multi_mode.schemes_per_pass);
  std::printf("speedup: group vs trace %.2fx, multi vs group %.2fx, "
              "multi vs trace %.2fx\n",
              speedup, multi_speedup, full_speedup);
  std::printf("multi path: %llu captures, %llu group replays, "
              "%llu all-schemes passes per sweep repetition set\n",
              static_cast<unsigned long long>(multi_mode.captures),
              static_cast<unsigned long long>(multi_mode.group_replays),
              static_cast<unsigned long long>(multi_mode.multischeme_passes));
  const double store_speedup =
      store_mode.best_seconds > 0
          ? cold_mode.best_seconds / store_mode.best_seconds
          : 0.0;
  std::printf("cold start: %.3fs (%llu emulations/rep)   "
              "warm-store start: %.3fs (0 emulations, 0 captures)   "
              "store speedup: %.2fx\n",
              cold_mode.best_seconds,
              static_cast<unsigned long long>(
                  cold_mode.emulations / static_cast<unsigned>(repeat)),
              store_mode.best_seconds, store_speedup);

  std::string baseline_json;
  double baseline_group_best = 0.0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "warning: cannot read baseline %s\n",
                   baseline_path.c_str());
    } else {
      std::ostringstream ss;
      ss << in.rdbuf();
      baseline_json = ss.str();
      baseline_group_best = extract_group_path_best(baseline_json);
      if (baseline_group_best > 0 && multi_mode.best_seconds > 0)
        std::printf("full-sweep speedup vs baseline group path (%s): %.2fx\n",
                    baseline_path.c_str(),
                    baseline_group_best / multi_mode.best_seconds);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  char buf[512];
  out << "{\n  \"schema\": \"mrisc-bench-steer/v3\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"schemes\": %zu,\n  \"workloads\": %zu,\n"
                "  \"scale\": %g,\n  \"jobs\": %d,\n  \"repeat\": %d,\n",
                std::size(driver::kAllSchemesExtended), suite.size(),
                suite_cfg.scale, profile_engine.jobs(), repeat);
  out << buf;
  auto write_runs = [&](Mode key, const ModeTiming& mode) {
    // "best_seconds" stays the first key in each mode object so v1 readers
    // (older bench-diff builds) keep parsing v2 files.
    std::snprintf(buf, sizeof buf, "  \"%s\": {\"best_seconds\": %.6f, "
                  "\"schemes_per_pass\": %zu, \"runs\": [",
                  mode_key(key), mode.best_seconds, mode.schemes_per_pass);
    out << buf;
    for (std::size_t i = 0; i < mode.runs.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%s%.6f", i ? ", " : "", mode.runs[i]);
      out << buf;
    }
    out << "]}";
  };
  write_runs(Mode::kTracePath, trace_mode);
  out << ",\n";
  write_runs(Mode::kGroupPath, group_mode);
  out << ",\n";
  write_runs(Mode::kMultiPath, multi_mode);
  out << ",\n";
  write_runs(Mode::kColdStart, cold_mode);
  out << ",\n";
  write_runs(Mode::kStoreStart, store_mode);
  std::snprintf(buf, sizeof buf,
                ",\n  \"speedup\": %.3f,\n  \"multi_speedup\": %.3f,\n"
                "  \"full_speedup\": %.3f,\n  \"store_speedup\": %.3f",
                speedup, multi_speedup, full_speedup, store_speedup);
  out << buf;
  if (baseline_group_best > 0) {
    std::snprintf(buf, sizeof buf,
                  ",\n  \"baseline_group_path_best_seconds\": %.6f,\n"
                  "  \"sweep_speedup_vs_baseline\": %.3f,\n  \"baseline\": ",
                  baseline_group_best,
                  multi_mode.best_seconds > 0
                      ? baseline_group_best / multi_mode.best_seconds
                      : 0.0);
    out << buf << baseline_json;
  }
  out << "\n}\n";
  std::fprintf(stderr, "[json written to %s]\n", out_path.c_str());

  std::snprintf(buf, sizeof buf, "%.3f", speedup);
  manifest.note("speedup", buf);
  std::snprintf(buf, sizeof buf, "%.3f", multi_speedup);
  manifest.note("multi_speedup", buf);
  std::snprintf(buf, sizeof buf, "%.6f", trace_mode.best_seconds);
  manifest.note("trace_path_best_seconds", buf);
  std::snprintf(buf, sizeof buf, "%.6f", group_mode.best_seconds);
  manifest.note("group_path_best_seconds", buf);
  std::snprintf(buf, sizeof buf, "%.6f", multi_mode.best_seconds);
  manifest.note("multi_path_best_seconds", buf);
  std::snprintf(buf, sizeof buf, "%zu", multi_mode.schemes_per_pass);
  manifest.note("schemes_per_pass", buf);
  std::snprintf(buf, sizeof buf, "%.6f", cold_mode.best_seconds);
  manifest.note("cold_start_best_seconds", buf);
  std::snprintf(buf, sizeof buf, "%.6f", store_mode.best_seconds);
  manifest.note("store_start_best_seconds", buf);
  std::snprintf(buf, sizeof buf, "%.3f", store_speedup);
  manifest.note("store_speedup", buf);
  manifest.note("store_dir", store_dir);
  manifest.note("out", out_path);
  manifest.add_cell("trace_path", trace_mode.best_seconds,
                    std::size(driver::kAllSchemesExtended));
  manifest.add_cell("group_path", group_mode.best_seconds,
                    std::size(driver::kAllSchemesExtended));
  manifest.add_cell("multi_path", multi_mode.best_seconds,
                    std::size(driver::kAllSchemesExtended));
  manifest.add_cell("cold_start", cold_mode.best_seconds,
                    std::size(driver::kAllSchemesExtended));
  manifest.add_cell("store_start", store_mode.best_seconds,
                    std::size(driver::kAllSchemesExtended));
  return 0;
}
