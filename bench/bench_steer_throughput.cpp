// bench_steer_throughput: wall-clock of the full scheme sweep, trace path
// vs group path.
//
// The acceptance question for the "time once, steer many" layer
// (sim/group_buffer.h + the engine's group cache) is end to end: how much
// faster does the fig4-style scheme sweep - every scheme in
// kAllSchemesExtended crossed with hardware swapping over the Figure 4
// suite - finish when the engine steers cached issue-group captures instead
// of replaying the full Tomasulo core per cell? This bench times exactly
// that sweep both ways on the same ExperimentEngine configuration (trace
// cache pre-warmed in both modes so emulation cost is excluded), repeats
// the measurement, and reports the best-of-N wall clock per mode plus the
// speedup. It also cross-checks that the two modes render byte-identical
// result tables - a perf number for a wrong answer is worthless.
//
//   bench_steer_throughput [--out BENCH_steer.json] [--repeat 3]
//                          [--jobs N] [--manifest FILE]
//
// Output: human-readable summary on stdout and machine-readable JSON
// (schema mrisc-bench-steer/v1) for PR-over-PR tracking; the manifest
// (docs/observability.md) carries the engine's phase profile and the
// engine.groupcache.* counters. See docs/performance.md.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "driver/engine.h"
#include "util/table.h"

namespace {

using namespace mrisc;
using Clock = std::chrono::steady_clock;

/// The measured sweep: every extended scheme x hardware swapping over the
/// whole suite (one column of Figure 4, widened to the shipped scheme set).
driver::ExperimentPlan sweep_plan(const std::vector<workloads::Workload>& suite) {
  driver::ExperimentPlan plan;
  plan.add_suite(suite);
  for (const driver::Scheme scheme : driver::kAllSchemesExtended) {
    driver::ExperimentConfig config;
    config.scheme = scheme;
    config.swap = driver::SwapMode::kHardware;
    plan.add_cell(driver::to_string(scheme), config);
  }
  return plan;
}

/// One cell is enough to emulate + record every suite trace, so the timed
/// runs below never pay emulation or capture-input cost.
driver::ExperimentPlan warm_plan(const std::vector<workloads::Workload>& suite) {
  driver::ExperimentPlan plan;
  plan.add_suite(suite);
  driver::ExperimentConfig config;
  config.scheme = driver::Scheme::kOriginal;
  config.swap = driver::SwapMode::kHardware;
  plan.add_cell("warm", config);
  return plan;
}

/// Render the sweep's per-cell energies so the two modes can be compared
/// byte for byte.
std::string render(const std::vector<driver::CellResult>& cells) {
  util::AsciiTable table({"Scheme", "IALU bits", "FPAU bits", "Cycles"});
  std::size_t i = 0;
  for (const driver::Scheme scheme : driver::kAllSchemesExtended) {
    const driver::CellResult& cell = cells[i++];
    table.add_row({std::string(driver::to_string(scheme)),
                   std::to_string(cell.total.ialu.switched_bits),
                   std::to_string(cell.total.fpau.switched_bits),
                   std::to_string(cell.total.pipeline.cycles)});
  }
  return table.to_string("steer sweep");
}

struct ModeTiming {
  double best_seconds = 0.0;
  std::vector<double> runs;
  std::string rendered;
  std::uint64_t group_replays = 0;
  std::uint64_t captures = 0;
};

ModeTiming time_mode(const std::vector<workloads::Workload>& suite, int jobs,
                     bool group_replay, int repeat) {
  ModeTiming timing;
  driver::ExperimentEngine engine(jobs);
  engine.set_group_replay(group_replay);
  engine.run(warm_plan(suite));  // untimed: fills the trace cache
  for (int r = 0; r < repeat; ++r) {
    // A fresh group cache per repetition: the capture cost is part of what
    // the group path must amortize inside a single sweep.
    engine.clear_cache();
    engine.run(warm_plan(suite));
    const auto start = Clock::now();
    const auto cells = engine.run(sweep_plan(suite));
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    timing.runs.push_back(seconds);
    if (timing.best_seconds == 0.0 || seconds < timing.best_seconds)
      timing.best_seconds = seconds;
    if (r == 0) timing.rendered = render(cells);
  }
  timing.group_replays = engine.group_replays();
  timing.captures = engine.captures();
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_steer.json";
  std::string manifest_path;
  int repeat = 3;
  int jobs = mrisc::bench::parse_jobs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else if (arg == "--repeat") {
      if (const char* v = next()) repeat = std::atoi(v);
    } else if (arg == "--manifest") {
      if (const char* v = next()) manifest_path = v;
    } else if (arg == "--jobs") {
      (void)next();  // consumed by parse_jobs
    } else {
      std::fprintf(stderr,
                   "usage: bench_steer_throughput [--out FILE] [--repeat N] "
                   "[--jobs N] [--manifest FILE]\n");
      return 2;
    }
  }
  if (repeat < 1) repeat = 1;

  const auto suite_cfg = bench::suite_config();
  const auto suite = workloads::full_suite(suite_cfg);

  driver::ExperimentEngine profile_engine(jobs);
  bench::ManifestScope manifest("bench_steer_throughput", profile_engine.jobs(),
                                &profile_engine);
  if (!manifest_path.empty()) manifest.set_path(manifest_path);

  const ModeTiming trace_mode = time_mode(suite, jobs, /*group_replay=*/false,
                                          repeat);
  const ModeTiming group_mode = time_mode(suite, jobs, /*group_replay=*/true,
                                          repeat);
  if (trace_mode.rendered != group_mode.rendered) {
    std::fprintf(stderr,
                 "FATAL: trace-path and group-path sweeps disagree\n%s\n%s\n",
                 trace_mode.rendered.c_str(), group_mode.rendered.c_str());
    return 1;
  }
  std::fputs(group_mode.rendered.c_str(), stdout);

  // One profiled group-path run so the manifest carries the capture/steer
  // phase breakdown and engine.groupcache.* counters.
  profile_engine.run(sweep_plan(suite));

  const double speedup = group_mode.best_seconds > 0
                             ? trace_mode.best_seconds / group_mode.best_seconds
                             : 0.0;
  std::printf("schemes: %zu x hardware swap over %zu workloads, jobs=%d, "
              "best of %d\n",
              std::size(driver::kAllSchemesExtended), suite.size(),
              profile_engine.jobs(), repeat);
  std::printf("trace path: %.3fs   group path: %.3fs   speedup: %.2fx\n",
              trace_mode.best_seconds, group_mode.best_seconds, speedup);
  std::printf("group path: %llu captures, %llu group replays per sweep "
              "repetition set\n",
              static_cast<unsigned long long>(group_mode.captures),
              static_cast<unsigned long long>(group_mode.group_replays));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  char buf[512];
  out << "{\n  \"schema\": \"mrisc-bench-steer/v1\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"schemes\": %zu,\n  \"workloads\": %zu,\n"
                "  \"scale\": %g,\n  \"jobs\": %d,\n  \"repeat\": %d,\n",
                std::size(driver::kAllSchemesExtended), suite.size(),
                suite_cfg.scale, profile_engine.jobs(), repeat);
  out << buf;
  auto write_runs = [&](const char* key, const ModeTiming& mode) {
    std::snprintf(buf, sizeof buf, "  \"%s\": {\"best_seconds\": %.6f, "
                  "\"runs\": [", key, mode.best_seconds);
    out << buf;
    for (std::size_t i = 0; i < mode.runs.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%s%.6f", i ? ", " : "", mode.runs[i]);
      out << buf;
    }
    out << "]}";
  };
  write_runs("trace_path", trace_mode);
  out << ",\n";
  write_runs("group_path", group_mode);
  std::snprintf(buf, sizeof buf, ",\n  \"speedup\": %.3f\n}\n", speedup);
  out << buf;
  std::fprintf(stderr, "[json written to %s]\n", out_path.c_str());

  std::snprintf(buf, sizeof buf, "%.3f", speedup);
  manifest.note("speedup", buf);
  std::snprintf(buf, sizeof buf, "%.6f", trace_mode.best_seconds);
  manifest.note("trace_path_best_seconds", buf);
  std::snprintf(buf, sizeof buf, "%.6f", group_mode.best_seconds);
  manifest.note("group_path_best_seconds", buf);
  manifest.note("out", out_path);
  manifest.add_cell("trace_path", trace_mode.best_seconds,
                    std::size(driver::kAllSchemesExtended));
  manifest.add_cell("group_path", group_mode.best_seconds,
                    std::size(driver::kAllSchemesExtended));
  return 0;
}
