// Leakage/sleep interaction study (section 4 cites Johnson et al. [12] for
// idle-FU leakage control). A sleep controller gates a module after N quiet
// cycles and pays a wake cost on reuse. The interesting question is whether
// steering helps or hurts it: FCFS naturally piles work onto the
// lowest-numbered modules (long sleeps for the rest), while case-affine
// steering deliberately keeps several modules warm. This bench quantifies
// the trade on the integer suite; see EXPERIMENTS.md for the finding.
//
// Engine-based: one emulation per kernel feeds all six (sleep x steering)
// cells; each cell attaches a fresh LeakageTracker per workload via the
// engine's listener factory.
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/engine.h"
#include "power/leakage.h"
#include "sim/ooo.h"
#include "util/table.h"

namespace {

using namespace mrisc;

struct Outcome {
  double dynamic_bits = 0;
  double leakage = 0;
  std::uint64_t slept = 0, wakeups = 0, module_cycles = 0;
};

Outcome summarize(const driver::CellResult& cell) {
  Outcome total;
  for (std::size_t i = 0; i < cell.per_unit.size(); ++i) {
    const auto& result = cell.per_unit[i];
    const auto* leakage =
        static_cast<const power::LeakageTracker*>(cell.listeners[i].get());
    total.dynamic_bits += static_cast<double>(result.ialu.switched_bits);
    total.leakage += leakage->energy(isa::FuClass::kIalu);
    total.slept += leakage->slept_cycles(isa::FuClass::kIalu);
    total.wakeups += leakage->wakeups(isa::FuClass::kIalu);
    total.module_cycles += 4 * result.pipeline.cycles;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const auto suite = mrisc::workloads::integer_suite(bench::suite_config());

  driver::ExperimentEngine engine(bench::parse_jobs(argc, argv));
  bench::ManifestScope manifest("bench_leakage", engine.jobs(), &engine);
  driver::ExperimentPlan plan;
  plan.add_suite(suite);
  for (const int sleep_after : {8, 32, 128}) {
    for (const bool steered : {false, true}) {
      driver::ExperimentCell cell;
      cell.label = std::string(steered ? "lut4" : "fcfs") + "/sleep" +
                   std::to_string(sleep_after);
      cell.config.scheme =
          steered ? driver::Scheme::kLut4 : driver::Scheme::kOriginal;
      cell.config.swap = driver::SwapMode::kHardware;
      cell.make_listener = [sleep_after](const driver::ExperimentUnit&,
                                         std::size_t) {
        power::LeakageConfig leak_config;
        leak_config.sleep_after_idle = sleep_after;
        return std::make_unique<power::LeakageTracker>(
            leak_config, sim::OooConfig{}.modules);
      };
      plan.cells.push_back(std::move(cell));
    }
  }
  const auto cells = engine.run(plan);

  mrisc::util::AsciiTable table({"Assignment", "sleep after", "IALU leakage",
                                 "slept module-cycles", "wakeups",
                                 "dynamic bits"});
  std::size_t index = 0;
  for (const int sleep_after : {8, 32, 128}) {
    for (const bool steered : {false, true}) {
      const Outcome outcome = summarize(cells[index++]);
      table.add_row(
          {steered ? "4-bit LUT + hw swap" : "Original (FCFS)",
           std::to_string(sleep_after),
           mrisc::util::fmt_fixed(outcome.leakage, 0),
           std::to_string(outcome.slept) + " / " +
               std::to_string(outcome.module_cycles),
           std::to_string(outcome.wakeups),
           mrisc::util::fmt_fixed(outcome.dynamic_bits, 0)});
    }
  }
  std::puts(table
                .to_string("Leakage/sleep interaction (section 4's [12]): "
                           "dynamic savings vs sleep opportunity")
                .c_str());
  return 0;
}
