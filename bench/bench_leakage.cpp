// Leakage/sleep interaction study (section 4 cites Johnson et al. [12] for
// idle-FU leakage control). A sleep controller gates a module after N quiet
// cycles and pays a wake cost on reuse. The interesting question is whether
// steering helps or hurts it: FCFS naturally piles work onto the
// lowest-numbered modules (long sleeps for the rest), while case-affine
// steering deliberately keeps several modules warm. This bench quantifies
// the trade on the integer suite; see EXPERIMENTS.md for the finding.
#include <cstdio>

#include "bench/bench_common.h"
#include "power/energy.h"
#include "power/leakage.h"
#include "sim/emulator.h"
#include "sim/ooo.h"
#include "stats/paper_ref.h"
#include "steer/lut.h"
#include "steer/policies.h"
#include "util/table.h"

namespace {

using namespace mrisc;

struct Outcome {
  double dynamic_bits = 0;
  double leakage = 0;
  std::uint64_t slept = 0, wakeups = 0, module_cycles = 0;
};

Outcome run(const std::vector<workloads::Workload>& suite, bool steered,
            int sleep_after) {
  Outcome total;
  for (const auto& workload : suite) {
    sim::Emulator emu(workload.assembled());
    sim::EmulatorTraceSource source(emu);
    sim::OooConfig machine;
    sim::OooCore core(machine, source);

    const auto swap = steer::SwapConfig::hardware_for(isa::FuClass::kIalu);
    steer::FcfsSteering fcfs(swap);
    steer::LutSteering lut(
        steer::build_lut(stats::paper_case_stats(isa::FuClass::kIalu), 4, 4),
        swap);
    core.set_policy(isa::FuClass::kIalu,
                    steered ? static_cast<sim::SteeringPolicy*>(&lut) : &fcfs);

    power::EnergyAccountant dynamic_energy;
    power::LeakageConfig leak_config;
    leak_config.sleep_after_idle = sleep_after;
    power::LeakageTracker leakage(leak_config, machine.modules);
    core.add_listener(&dynamic_energy);
    core.add_listener(&leakage);
    core.run();

    total.dynamic_bits += static_cast<double>(
        dynamic_energy.cls(isa::FuClass::kIalu).switched_bits);
    total.leakage += leakage.energy(isa::FuClass::kIalu);
    total.slept += leakage.slept_cycles(isa::FuClass::kIalu);
    total.wakeups += leakage.wakeups(isa::FuClass::kIalu);
    total.module_cycles += 4 * core.stats().cycles;
  }
  return total;
}

}  // namespace

int main() {
  const auto suite = mrisc::workloads::integer_suite(bench::suite_config());

  mrisc::util::AsciiTable table({"Assignment", "sleep after", "IALU leakage",
                                 "slept module-cycles", "wakeups",
                                 "dynamic bits"});
  for (const int sleep_after : {8, 32, 128}) {
    for (const bool steered : {false, true}) {
      const Outcome outcome = run(suite, steered, sleep_after);
      table.add_row(
          {steered ? "4-bit LUT + hw swap" : "Original (FCFS)",
           std::to_string(sleep_after),
           mrisc::util::fmt_fixed(outcome.leakage, 0),
           std::to_string(outcome.slept) + " / " +
               std::to_string(outcome.module_cycles),
           std::to_string(outcome.wakeups),
           mrisc::util::fmt_fixed(outcome.dynamic_bits, 0)});
    }
  }
  std::puts(table
                .to_string("Leakage/sleep interaction (section 4's [12]): "
                           "dynamic savings vs sleep opportunity")
                .c_str());
  return 0;
}
