// Ablation studies beyond the paper's figures (DESIGN.md section 3):
//   A. module-count sweep (2/4/8 IALUs) for the 4-bit LUT and Full Ham;
//   B. LUT module-affinity strategy (proportional-with-wildcard, the
//      paper's IALU design, vs one-case-per-module coverage);
//   C. LUT built from paper statistics vs. self-measured statistics;
//   D. FP information-bit width: OR of the mantissa's bottom 1/2/4/8/16
//      bits (the paper fixes 4 for circuit speed);
//   E. out-of-order vs in-order (VLIW-like) issue - the paper's section 2
//      remark about VLIW applicability.
//
// All sections run on one shared trace-replay engine: machine-shape and
// steering knobs never change the committed-path trace, so the whole bench
// performs exactly one functional emulation per kernel and replays it for
// every cell, in parallel.
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/engine.h"
#include "steer/policies.h"
#include "util/table.h"

namespace {

using namespace mrisc;

/// Run a list of cells over a suite on the shared engine.
std::vector<driver::CellResult> run_cells(
    driver::ExperimentEngine& engine,
    const std::vector<workloads::Workload>& suite,
    std::vector<driver::ExperimentCell> cells) {
  driver::ExperimentPlan plan;
  plan.add_suite(suite);
  plan.cells = std::move(cells);
  return engine.run(plan);
}

driver::ExperimentCell cell(const char* label,
                            const driver::ExperimentConfig& config,
                            bool collect_stats = false) {
  driver::ExperimentCell c;
  c.label = label;
  c.config = config;
  c.collect_stats = collect_stats;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config0 = bench::suite_config();
  const auto ints = workloads::integer_suite(config0);
  const auto fps = workloads::fp_suite(config0);
  driver::ExperimentEngine engine(bench::parse_jobs(argc, argv));
  bench::ManifestScope manifest("bench_ablation", engine.jobs(), &engine);

  // --- A: module count sweep -------------------------------------------
  {
    util::AsciiTable table(
        {"IALUs", "4-bit LUT reduction", "Full Ham reduction"});
    for (const int modules : {2, 4, 8}) {
      driver::ExperimentConfig base;
      base.scheme = driver::Scheme::kOriginal;
      base.machine.modules[static_cast<std::size_t>(isa::FuClass::kIalu)] =
          modules;
      base.machine.issue_width = modules + 2;

      driver::ExperimentConfig lut4 = base;
      lut4.scheme = driver::Scheme::kLut4;
      driver::ExperimentConfig fullham = base;
      fullham.scheme = driver::Scheme::kFullHam;
      // 8-module LUT uses a 4-slot vector at most; keep kLut4 (2 slots).
      const auto results = run_cells(
          engine, ints,
          {cell("base", base), cell("lut4", lut4), cell("fullham", fullham)});
      const auto& original = results[0].total;
      table.add_row({std::to_string(modules),
                     util::fmt_pct(driver::reduction_pct(
                         original, results[1].total, isa::FuClass::kIalu)),
                     util::fmt_pct(driver::reduction_pct(
                         original, results[2].total, isa::FuClass::kIalu))});
    }
    std::puts(table.to_string("Ablation A: IALU module count").c_str());
  }

  // --- B: affinity strategy --------------------------------------------
  {
    util::AsciiTable table({"Unit", "proportional", "coverage", "auto"});
    for (const bool fp : {false, true}) {
      const auto& suite = fp ? fps : ints;
      const auto cls = fp ? isa::FuClass::kFpau : isa::FuClass::kIalu;
      driver::ExperimentConfig base;
      base.scheme = driver::Scheme::kOriginal;

      std::vector<driver::ExperimentCell> cells{cell("base", base)};
      for (const auto strategy :
           {steer::AffinityStrategy::kProportional,
            steer::AffinityStrategy::kCoverage, steer::AffinityStrategy::kAuto}) {
        driver::ExperimentConfig c;
        c.scheme = driver::Scheme::kLut4;
        c.affinity = strategy;
        cells.push_back(cell("lut4", c));
      }
      const auto results = run_cells(engine, suite, std::move(cells));
      std::vector<std::string> row{isa::to_string(cls)};
      for (std::size_t i = 1; i < results.size(); ++i)
        row.push_back(util::fmt_pct(driver::reduction_pct(
            results[0].total, results[i].total, cls)));
      table.add_row(std::move(row));
    }
    std::puts(
        table.to_string("Ablation B: LUT module-affinity strategy").c_str());
  }

  // --- C: paper statistics vs. measured statistics -----------------------
  {
    driver::ExperimentConfig base;
    base.scheme = driver::Scheme::kOriginal;
    const auto baseline =
        run_cells(engine, ints, {cell("base", base, /*collect_stats=*/true)});
    const auto& patterns = baseline[0].patterns;
    const auto& occupancy = baseline[0].occupancy;

    driver::ExperimentConfig paper;
    paper.scheme = driver::Scheme::kLut4;

    driver::ExperimentConfig measured = paper;
    measured.lut_from_paper = false;
    measured.ialu_stats = patterns.case_stats(
        isa::FuClass::kIalu, occupancy.multi_issue_prob(isa::FuClass::kIalu));
    measured.fpau_stats = patterns.case_stats(
        isa::FuClass::kFpau, occupancy.multi_issue_prob(isa::FuClass::kFpau));

    const auto results = run_cells(
        engine, ints, {cell("paper", paper), cell("measured", measured)});
    const double with_paper = driver::reduction_pct(
        baseline[0].total, results[0].total, isa::FuClass::kIalu);
    const double with_measured = driver::reduction_pct(
        baseline[0].total, results[1].total, isa::FuClass::kIalu);

    util::AsciiTable table({"LUT statistics source", "IALU reduction"});
    table.add_row({"paper Table 1/2", util::fmt_pct(with_paper)});
    table.add_row({"self-measured profile", util::fmt_pct(with_measured)});
    std::puts(table.to_string("Ablation C: LUT construction statistics").c_str());
  }

  // --- D: FP information-bit OR width ------------------------------------
  {
    driver::ExperimentConfig base;
    base.scheme = driver::Scheme::kOriginal;
    std::vector<driver::ExperimentCell> cells{cell("base", base)};
    for (const int bits : {1, 2, 4, 8, 16}) {
      driver::ExperimentConfig config;
      config.scheme = driver::Scheme::kOneBitHam;
      config.fp_or_bits = bits;
      cells.push_back(cell("onebit", config));
    }
    const auto results = run_cells(engine, fps, std::move(cells));
    util::AsciiTable table({"OR width (mantissa bits)", "FPAU 1-bit-Ham"});
    const int widths[] = {1, 2, 4, 8, 16};
    for (std::size_t i = 0; i < 5; ++i) {
      table.add_row({std::to_string(widths[i]),
                     util::fmt_pct(driver::reduction_pct(
                         results[0].total, results[i + 1].total,
                         isa::FuClass::kFpau))});
    }
    std::puts(table
                  .to_string("Ablation D: FP information-bit width "
                             "(paper fixes 4 for circuit speed)")
                  .c_str());
  }

  // --- E: out-of-order vs in-order (VLIW-like) issue ----------------------
  {
    util::AsciiTable table(
        {"Issue order", "IALU 4-bit LUT", "IALU Full Ham", "suite IPC"});
    for (const bool in_order : {false, true}) {
      driver::ExperimentConfig base;
      base.scheme = driver::Scheme::kOriginal;
      base.machine.in_order_issue = in_order;
      driver::ExperimentConfig lut4 = base;
      lut4.scheme = driver::Scheme::kLut4;
      driver::ExperimentConfig fullham = base;
      fullham.scheme = driver::Scheme::kFullHam;
      const auto results = run_cells(
          engine, ints,
          {cell("base", base), cell("lut4", lut4), cell("fullham", fullham)});
      const auto& original = results[0].total;
      table.add_row({in_order ? "in-order (VLIW-like)" : "out-of-order",
                     util::fmt_pct(driver::reduction_pct(
                         original, results[1].total, isa::FuClass::kIalu)),
                     util::fmt_pct(driver::reduction_pct(
                         original, results[2].total, isa::FuClass::kIalu)),
                     util::fmt_fixed(original.pipeline.ipc(), 2)});
    }
    std::puts(table.to_string("Ablation E: issue-order sensitivity").c_str());
  }

  // --- F: front-end realism (branch predictor) ----------------------------
  {
    util::AsciiTable table({"Front end", "IALU 4-bit LUT", "Full Ham",
                            "mispredict rate", "suite IPC"});
    for (const auto kind : {sim::BpredConfig::Kind::kNone,
                            sim::BpredConfig::Kind::kBimodal,
                            sim::BpredConfig::Kind::kGshare}) {
      driver::ExperimentConfig base;
      base.scheme = driver::Scheme::kOriginal;
      base.machine.bpred.kind = kind;
      driver::ExperimentConfig lut4 = base;
      lut4.scheme = driver::Scheme::kLut4;
      driver::ExperimentConfig fullham = base;
      fullham.scheme = driver::Scheme::kFullHam;
      const auto results = run_cells(
          engine, ints,
          {cell("base", base), cell("lut4", lut4), cell("fullham", fullham)});
      const auto& original = results[0].total;
      const double rate =
          original.pipeline.branches
              ? 100.0 * static_cast<double>(original.pipeline.mispredictions) /
                    static_cast<double>(original.pipeline.branches)
              : 0.0;
      const char* name = kind == sim::BpredConfig::Kind::kNone ? "perfect"
                         : kind == sim::BpredConfig::Kind::kBimodal
                             ? "bimodal"
                             : "gshare";
      table.add_row({name,
                     util::fmt_pct(driver::reduction_pct(
                         original, results[1].total, isa::FuClass::kIalu)),
                     util::fmt_pct(driver::reduction_pct(
                         original, results[2].total, isa::FuClass::kIalu)),
                     util::fmt_pct(rate),
                     util::fmt_fixed(original.pipeline.ipc(), 2)});
    }
    std::puts(
        table.to_string("Ablation F: branch-predictor sensitivity").c_str());
  }

  // --- G: PC-affinity steering (our extension) ----------------------------
  {
    util::AsciiTable table({"Unit", "Round-robin (control)", "4-bit LUT",
                            "PC-hash (extension)", "1-Bit Ham"});
    for (const bool fp : {false, true}) {
      const auto& suite = fp ? fps : ints;
      const auto cls = fp ? isa::FuClass::kFpau : isa::FuClass::kIalu;
      driver::ExperimentConfig base;
      base.scheme = driver::Scheme::kOriginal;
      std::vector<driver::ExperimentCell> cells{cell("base", base)};
      for (const driver::Scheme scheme :
           {driver::Scheme::kRoundRobin, driver::Scheme::kLut4,
            driver::Scheme::kPcHash, driver::Scheme::kOneBitHam}) {
        driver::ExperimentConfig c;
        c.scheme = scheme;
        cells.push_back(cell(driver::to_string(scheme), c));
      }
      const auto results = run_cells(engine, suite, std::move(cells));
      std::vector<std::string> row{isa::to_string(cls)};
      for (std::size_t i = 1; i < results.size(); ++i)
        row.push_back(util::fmt_pct(driver::reduction_pct(
            results[0].total, results[i].total, cls)));
      table.add_row(std::move(row));
    }
    std::puts(table
                  .to_string("Ablation G: PC-affinity steering - how much of "
                             "the win is temporal value locality?")
                  .c_str());
  }
  std::fprintf(stderr, "[engine: %llu emulations, %llu replays]\n",
               static_cast<unsigned long long>(engine.emulations()),
               static_cast<unsigned long long>(engine.replays()));
  return 0;
}
