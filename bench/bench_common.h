// Shared helpers for the bench binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "driver/engine.h"
#include "obs/manifest.h"
#include "util/hash.h"
#include "util/table.h"
#include "workloads/workload.h"

namespace mrisc::bench {

/// Experiment-engine parallelism: `--jobs N` on the command line (or
/// MRISC_JOBS=N); 0, the default, means hardware_concurrency. Every value
/// produces bit-identical output - jobs only changes wall-clock time.
inline int parse_jobs(int argc, char** argv) {
  int jobs = 0;
  if (const char* env = std::getenv("MRISC_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) jobs = v;
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--jobs") {
      const int v = std::atoi(argv[i + 1]);
      if (v > 0) jobs = v;
    }
  }
  return jobs;
}

/// Workload scale for bench runs: default 1.0 (the full experiment size),
/// override with MRISC_SCALE=0.2 etc. for quick runs.
inline workloads::SuiteConfig suite_config() {
  workloads::SuiteConfig config;
  if (const char* env = std::getenv("MRISC_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) config.scale = v;
  }
  return config;
}

/// Run-manifest support for bench binaries (docs/observability.md). One of
/// these at the top of main() writes an mrisc-manifest/v1 JSON file when it
/// goes out of scope, to $MRISC_MANIFEST (set by CI) or to a path supplied
/// via set_path() (benches that parse a --manifest flag). Construct it
/// AFTER the ExperimentEngine so the engine outlives the scope:
///   driver::ExperimentEngine engine(jobs);
///   bench::ManifestScope manifest("bench_fig4_ialu", jobs, &engine);
///   manifest.note("scale", ...);
class ManifestScope {
 public:
  ManifestScope(std::string tool, int jobs,
                const driver::ExperimentEngine* engine = nullptr)
      : tool_(std::move(tool)),
        jobs_(jobs),
        engine_(engine),
        wall_start_(std::chrono::steady_clock::now()) {
    if (const char* env = std::getenv("MRISC_MANIFEST")) path_ = env;
  }

  ManifestScope(const ManifestScope&) = delete;
  ManifestScope& operator=(const ManifestScope&) = delete;

  void set_path(std::string path) { path_ = std::move(path); }
  /// Free-form extras (scheme names, suite scale, speedups, ...).
  void note(const std::string& key, std::string value) {
    extra_[key] = std::move(value);
  }
  void add_cell(std::string label, double wall_seconds, std::uint64_t units) {
    cells_.emplace_back(std::move(label), wall_seconds, units);
  }

  ~ManifestScope() {
    if (path_.empty()) return;
    try {
      obs::RunManifest manifest;
      manifest.tool = tool_;
      const char* label = std::getenv("MRISC_BENCH_LABEL");
      manifest.label = label && *label ? label : tool_;
      manifest.jobs = jobs_;
      manifest.git_describe = obs::RunManifest::build_git_describe();
      manifest.tidy_warning_count = obs::RunManifest::tidy_count_from_env();
      manifest.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start_)
              .count();
      manifest.cpu_seconds = obs::process_cpu_seconds();
      manifest.cells = std::move(cells_);
      if (engine_) manifest.phases = engine_->profile();
      manifest.metrics = obs::MetricsRegistry::global().snapshot();
      std::string fingerprint = tool_;
      for (const auto& [key, value] : extra_)
        fingerprint.append("|").append(key).append("=").append(value);
      manifest.config_hash = util::fnv1a_hex(fingerprint);
      manifest.extra = std::move(extra_);
      manifest.write(path_);
      std::fprintf(stderr, "[manifest written to %s]\n", path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: cannot write manifest %s: %s\n",
                   path_.c_str(), e.what());
    }
  }

 private:
  std::string tool_;
  std::string path_;
  int jobs_;
  const driver::ExperimentEngine* engine_;
  std::chrono::steady_clock::time_point wall_start_;
  std::vector<obs::RunManifest::Cell> cells_;
  std::map<std::string, std::string> extra_;
};

/// When MRISC_CSV names a directory, also write each rendered table there as
/// `<name>.csv` (for plotting); otherwise a no-op.
inline void maybe_write_csv(const std::string& name,
                            const util::AsciiTable& table) {
  const char* dir = std::getenv("MRISC_CSV");
  if (!dir || !*dir) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.to_csv();
  std::fprintf(stderr, "[csv written to %s]\n", path.c_str());
}

}  // namespace mrisc::bench
