// Shared helpers for the bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "util/table.h"
#include "workloads/workload.h"

namespace mrisc::bench {

/// Experiment-engine parallelism: `--jobs N` on the command line (or
/// MRISC_JOBS=N); 0, the default, means hardware_concurrency. Every value
/// produces bit-identical output - jobs only changes wall-clock time.
inline int parse_jobs(int argc, char** argv) {
  int jobs = 0;
  if (const char* env = std::getenv("MRISC_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) jobs = v;
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--jobs") {
      const int v = std::atoi(argv[i + 1]);
      if (v > 0) jobs = v;
    }
  }
  return jobs;
}

/// Workload scale for bench runs: default 1.0 (the full experiment size),
/// override with MRISC_SCALE=0.2 etc. for quick runs.
inline workloads::SuiteConfig suite_config() {
  workloads::SuiteConfig config;
  if (const char* env = std::getenv("MRISC_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) config.scale = v;
  }
  return config;
}

/// When MRISC_CSV names a directory, also write each rendered table there as
/// `<name>.csv` (for plotting); otherwise a no-op.
inline void maybe_write_csv(const std::string& name,
                            const util::AsciiTable& table) {
  const char* dir = std::getenv("MRISC_CSV");
  if (!dir || !*dir) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.to_csv();
  std::fprintf(stderr, "[csv written to %s]\n", path.c_str());
}

}  // namespace mrisc::bench
