// Per-workload view of Figure 4: the paper aggregates across the suite;
// this bench shows each benchmark's own reduction under the recommended
// configuration (4-bit LUT + hardware swapping) and the Full-Ham bound -
// useful for seeing which operand populations the technique likes. Runs as
// a 3-cell engine plan; the per-workload numbers come from the engine's
// per-unit results instead of a re-run loop.
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/engine.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mrisc;
  const auto suite = workloads::full_suite(bench::suite_config());

  driver::ExperimentEngine engine(bench::parse_jobs(argc, argv));
  bench::ManifestScope manifest("bench_per_workload", engine.jobs(), &engine);
  driver::ExperimentPlan plan;
  plan.add_suite(suite);

  driver::ExperimentConfig base;
  base.scheme = driver::Scheme::kOriginal;
  const std::size_t original = plan.add_cell("original", base);

  driver::ExperimentConfig lut;
  lut.scheme = driver::Scheme::kLut4;
  lut.swap = driver::SwapMode::kHardware;
  const std::size_t lut4 = plan.add_cell("lut4+hw", lut);

  driver::ExperimentConfig full;
  full.scheme = driver::Scheme::kFullHam;
  full.swap = driver::SwapMode::kHardware;
  const std::size_t fullham = plan.add_cell("fullham+hw", full);

  const auto cells = engine.run(plan);

  util::AsciiTable table({"Workload", "Unit", "ops", "bits/op (orig)",
                          "4-bit LUT + hw", "Full Ham"});
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& workload = suite[i];
    const auto cls =
        workload.floating_point ? isa::FuClass::kFpau : isa::FuClass::kIalu;
    const auto& orig = cells[original].per_unit[i];
    const auto& e = orig.of(cls);
    table.add_row(
        {workload.name, isa::to_string(cls), std::to_string(e.ops),
         util::fmt_fixed(e.ops ? static_cast<double>(e.switched_bits) /
                                     static_cast<double>(e.ops)
                               : 0.0,
                         2),
         util::fmt_pct(
             driver::reduction_pct(orig, cells[lut4].per_unit[i], cls)),
         util::fmt_pct(
             driver::reduction_pct(orig, cells[fullham].per_unit[i], cls))});
  }
  std::puts(table.to_string("Per-workload energy reduction").c_str());
  return 0;
}
