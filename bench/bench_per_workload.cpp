// Per-workload view of Figure 4: the paper aggregates across the suite;
// this bench shows each benchmark's own reduction under the recommended
// configuration (4-bit LUT + hardware swapping) and the Full-Ham bound -
// useful for seeing which operand populations the technique likes.
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/experiment.h"
#include "util/table.h"

int main() {
  using namespace mrisc;
  const auto suite = workloads::full_suite(bench::suite_config());

  util::AsciiTable table({"Workload", "Unit", "ops", "bits/op (orig)",
                          "4-bit LUT + hw", "Full Ham"});
  for (const auto& workload : suite) {
    const auto cls =
        workload.floating_point ? isa::FuClass::kFpau : isa::FuClass::kIalu;
    driver::ExperimentConfig base;
    base.scheme = driver::Scheme::kOriginal;
    const auto original = driver::run_workload(workload, base);

    driver::ExperimentConfig lut;
    lut.scheme = driver::Scheme::kLut4;
    lut.swap = driver::SwapMode::kHardware;
    const auto lut_result = driver::run_workload(workload, lut);

    driver::ExperimentConfig full;
    full.scheme = driver::Scheme::kFullHam;
    full.swap = driver::SwapMode::kHardware;
    const auto full_result = driver::run_workload(workload, full);

    const auto& e = original.of(cls);
    table.add_row(
        {workload.name, isa::to_string(cls), std::to_string(e.ops),
         util::fmt_fixed(e.ops ? static_cast<double>(e.switched_bits) /
                                     static_cast<double>(e.ops)
                               : 0.0,
                         2),
         util::fmt_pct(driver::reduction_pct(original, lut_result, cls)),
         util::fmt_pct(driver::reduction_pct(original, full_result, cls))});
  }
  std::puts(table.to_string("Per-workload energy reduction").c_str());
  return 0;
}
