// Reproduces Figure 4(a): IALU energy reduction for Full Ham / 1-Bit Ham /
// 8-4-2-bit LUT / Original, each without swapping, with hardware swapping,
// and with hardware+compiler swapping, over the integer suite.
#include "bench/fig4_common.h"
#include "stats/paper_ref.h"

int main(int argc, char** argv) {
  using namespace mrisc;
  const auto suite = workloads::integer_suite(bench::suite_config());
  bench::run_figure4(suite, isa::FuClass::kIalu,
                     "Figure 4(a): IALU energy reduction (%)",
                     stats::kPaperIaluLut4HwSwap, bench::parse_jobs(argc, argv));
  return 0;
}
