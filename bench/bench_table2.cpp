// Reproduces Table 2: the frequency that each FU type issues k operations
// in one cycle on the 4-way machine (4 IALUs, 4 FPAUs), measured through
// the out-of-order core.
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/experiment.h"
#include "stats/report.h"

int main() {
  using namespace mrisc;
  bench::ManifestScope manifest("bench_table2", 0);

  const auto suite = workloads::full_suite(bench::suite_config());
  driver::ExperimentConfig experiment;
  experiment.scheme = driver::Scheme::kOriginal;
  stats::OccupancyAggregator occupancy;
  const auto result = driver::run_suite(suite, experiment, nullptr, &occupancy);

  std::puts(stats::render_table2(occupancy).c_str());
  std::printf("\nP(Num(I) >= 2 | busy): IALU %.1f%% (paper 59.7%%), "
              "FPAU %.1f%% (paper 9.8%%)\n",
              100.0 * occupancy.multi_issue_prob(isa::FuClass::kIalu),
              100.0 * occupancy.multi_issue_prob(isa::FuClass::kFpau));
  std::printf("suite: %llu instructions, %llu cycles, IPC %.2f\n",
              static_cast<unsigned long long>(result.pipeline.committed),
              static_cast<unsigned long long>(result.pipeline.cycles),
              result.pipeline.ipc());
  return 0;
}
