// Cross-input compiler swapping (section 4.4, second compiler
// disadvantage): "since the program must be profiled, performance will vary
// somewhat for different input patterns". We profile the swap pass on input
// A and evaluate on input B (same program structure, different data), and
// compare against the matched-input case and against hardware swapping,
// which adapts dynamically and has no such exposure.
//
// Engine-based: baseline and hardware cells share input B's base traces;
// the matched cell uses the compiler-swapped variant; the cross-input cell
// supplies its transplanted binaries through the engine's prepare hook
// (the trick: the swap pass operates on PCs, and the A/B program texts
// differ only in their seed immediates, so the decision vector from A
// applies to B's binary PC-for-PC).
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/engine.h"
#include "util/table.h"
#include "xform/swap_pass.h"

int main(int argc, char** argv) {
  using namespace mrisc;
  auto config_a = bench::suite_config();
  auto config_b = config_a;
  config_b.seed_salt = 0xB0B;

  const auto suite_a = workloads::integer_suite(config_a);
  const auto suite_b = workloads::integer_suite(config_b);

  driver::ExperimentEngine engine(bench::parse_jobs(argc, argv));
  bench::ManifestScope manifest("bench_cross_input", engine.jobs(), &engine);
  driver::ExperimentPlan plan;
  plan.add_suite(suite_b);

  driver::ExperimentConfig original;
  original.scheme = driver::Scheme::kOriginal;
  const std::size_t c_base = plan.add_cell("baseline", original);

  // Matched-input compiler swap (profile B, run B).
  driver::ExperimentConfig matched_config = original;
  matched_config.swap = driver::SwapMode::kCompilerOnly;
  const std::size_t c_matched = plan.add_cell("matched", matched_config);

  // Cross-input: profile A's binary, transplant decisions onto B.
  {
    driver::ExperimentCell crossed;
    crossed.label = "cross-input";
    crossed.config = original;
    crossed.config.verify_outputs = false;
    crossed.fingerprint = "profileA";
    crossed.prepare = [&suite_a](const driver::ExperimentUnit& unit,
                                 std::size_t index) {
      const auto profile = xform::profile_program(suite_a[index].assembled());
      isa::Program program_b = unit.workload->assembled();
      xform::compiler_swap_pass(program_b, profile);
      return program_b;
    };
    plan.cells.push_back(std::move(crossed));
  }
  const std::size_t c_crossed = plan.cells.size() - 1;

  // Hardware swapping (input-independent by construction).
  driver::ExperimentConfig hw_config = original;
  hw_config.swap = driver::SwapMode::kHardware;
  const std::size_t c_hw = plan.add_cell("hardware", hw_config);

  const auto cells = engine.run(plan);
  const double matched = driver::reduction_pct(
      cells[c_base].total, cells[c_matched].total, isa::FuClass::kIalu);
  const double crossed = driver::reduction_pct(
      cells[c_base].total, cells[c_crossed].total, isa::FuClass::kIalu);
  const double hardware = driver::reduction_pct(
      cells[c_base].total, cells[c_hw].total, isa::FuClass::kIalu);

  util::AsciiTable table({"Swapping configuration", "IALU reduction on input B"});
  table.add_row({"compiler, profiled on input B (matched)",
                 util::fmt_pct(matched)});
  table.add_row({"compiler, profiled on input A (cross-input)",
                 util::fmt_pct(crossed)});
  table.add_row({"hardware swapping (dynamic, no profile)",
                 util::fmt_pct(hardware)});
  std::puts(table
                .to_string("Cross-input sensitivity of compiler swapping "
                           "(section 4.4)")
                .c_str());
  std::printf("profile transfer retains %.0f%% of the matched-input benefit\n",
              matched > 0 ? 100.0 * crossed / matched : 0.0);
  return 0;
}
