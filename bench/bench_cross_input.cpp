// Cross-input compiler swapping (section 4.4, second compiler
// disadvantage): "since the program must be profiled, performance will vary
// somewhat for different input patterns". We profile the swap pass on input
// A and evaluate on input B (same program structure, different data), and
// compare against the matched-input case and against hardware swapping,
// which adapts dynamically and has no such exposure.
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/experiment.h"
#include "util/table.h"
#include "xform/swap_pass.h"

int main() {
  using namespace mrisc;
  auto config_a = bench::suite_config();
  auto config_b = config_a;
  config_b.seed_salt = 0xB0B;

  const auto suite_a = workloads::integer_suite(config_a);
  const auto suite_b = workloads::integer_suite(config_b);

  // Baseline on input B.
  driver::ExperimentConfig base;
  base.scheme = driver::Scheme::kOriginal;
  const auto original_b = driver::run_suite(suite_b, base);

  // For each workload: rewrite using a profile from input A, then run the
  // rewritten binary on input B. The trick: the swap pass operates on PCs,
  // and the A/B program texts differ only in their seed immediates, so the
  // decision vector from A applies to B's binary PC-for-PC.
  double matched = 0, crossed = 0, hardware = 0;
  {
    driver::RunResult matched_total, crossed_total, hw_total;
    for (std::size_t i = 0; i < suite_b.size(); ++i) {
      // Matched-input compiler swap (profile B, run B).
      {
        driver::ExperimentConfig config;
        config.scheme = driver::Scheme::kOriginal;
        config.swap = driver::SwapMode::kCompilerOnly;
        matched_total.accumulate(driver::run_workload(suite_b[i], config));
      }
      // Cross-input: profile A's binary, transplant decisions onto B.
      {
        const auto profile = xform::profile_program(suite_a[i].assembled());
        isa::Program program_b = suite_b[i].assembled();
        xform::compiler_swap_pass(program_b, profile);
        driver::ExperimentConfig config;
        config.scheme = driver::Scheme::kOriginal;
        config.verify_outputs = false;
        crossed_total.accumulate(driver::run_program(
            program_b, suite_b[i].name, config));
      }
      // Hardware swapping (input-independent by construction).
      {
        driver::ExperimentConfig config;
        config.scheme = driver::Scheme::kOriginal;
        config.swap = driver::SwapMode::kHardware;
        hw_total.accumulate(driver::run_workload(suite_b[i], config));
      }
    }
    matched = driver::reduction_pct(original_b, matched_total,
                                    isa::FuClass::kIalu);
    crossed = driver::reduction_pct(original_b, crossed_total,
                                    isa::FuClass::kIalu);
    hardware = driver::reduction_pct(original_b, hw_total,
                                     isa::FuClass::kIalu);
  }

  util::AsciiTable table({"Swapping configuration", "IALU reduction on input B"});
  table.add_row({"compiler, profiled on input B (matched)",
                 util::fmt_pct(matched)});
  table.add_row({"compiler, profiled on input A (cross-input)",
                 util::fmt_pct(crossed)});
  table.add_row({"hardware swapping (dynamic, no profile)",
                 util::fmt_pct(hardware)});
  std::puts(table
                .to_string("Cross-input sensitivity of compiler swapping "
                           "(section 4.4)")
                .c_str());
  std::printf("profile transfer retains %.0f%% of the matched-input benefit\n",
              matched > 0 ? 100.0 * crossed / matched : 0.0);
  return 0;
}
