// Static vs profile-guided vs hardware operand swapping (section 4.4 and
// docs/analysis.md): how much of the profile pass's benefit can a compiler
// recover with *no* profiling run, acting only on operand bit values proven
// by the sign-bit abstract interpretation?
//
// Expected ordering: static <= profile <= hardware. The static pass only
// fires where a fact holds on every path (a few percent of swappable
// instructions), the profile pass also covers data-dependent operands, and
// hardware swapping adapts cycle by cycle.
//
// Engine-based: every cell replays the same decoded traces; results are
// bit-identical for any --jobs value.
#include <cstdio>

#include "bench/bench_common.h"
#include "driver/engine.h"
#include "util/table.h"
#include "xform/static_swap.h"

int main(int argc, char** argv) {
  using namespace mrisc;
  const auto suite = workloads::full_suite(bench::suite_config());

  driver::ExperimentEngine engine(bench::parse_jobs(argc, argv));
  bench::ManifestScope manifest("bench_static_swap", engine.jobs(), &engine);
  driver::ExperimentPlan plan;
  plan.add_suite(suite);

  driver::ExperimentConfig base;
  base.scheme = driver::Scheme::kOriginal;
  const std::size_t c_base = plan.add_cell("baseline", base);

  driver::ExperimentConfig static_config = base;
  static_config.swap = driver::SwapMode::kStaticOnly;
  const std::size_t c_static = plan.add_cell("static", static_config);

  driver::ExperimentConfig profile_config = base;
  profile_config.swap = driver::SwapMode::kCompilerOnly;
  const std::size_t c_profile = plan.add_cell("profile", profile_config);

  driver::ExperimentConfig hw_config = base;
  hw_config.swap = driver::SwapMode::kHardware;
  const std::size_t c_hw = plan.add_cell("hardware", hw_config);

  const auto cells = engine.run(plan);

  // Static coverage: how many orientations each compiler flavor commits to.
  std::uint64_t static_swaps = 0, candidates = 0;
  for (const auto& workload : suite) {
    xform::SwapReport report;
    xform::static_swapped_copy(workload.assembled(), {}, &report);
    static_swaps += report.swapped;
    candidates += report.candidates;
  }

  util::AsciiTable table(
      {"Swapping configuration", "IALU reduction", "FPAU reduction"});
  const auto row = [&](const char* label, std::size_t cell) {
    table.add_row({label,
                   util::fmt_pct(driver::reduction_pct(
                       cells[c_base].total, cells[cell].total,
                       isa::FuClass::kIalu)),
                   util::fmt_pct(driver::reduction_pct(
                       cells[c_base].total, cells[cell].total,
                       isa::FuClass::kFpau))});
  };
  row("compiler, static analysis only (no profile)", c_static);
  row("compiler, profile-guided", c_profile);
  row("hardware swapping (dynamic)", c_hw);
  std::puts(table
                .to_string("Static vs profile-guided vs hardware swapping "
                           "(docs/analysis.md)")
                .c_str());
  bench::maybe_write_csv("static_swap", table);
  std::printf(
      "static pass commits %llu of %llu swappable instruction sites "
      "(%.1f%%) with zero profiling runs\n",
      static_cast<unsigned long long>(static_swaps),
      static_cast<unsigned long long>(candidates),
      candidates > 0 ? 100.0 * static_swaps / candidates : 0.0);
  return 0;
}
