// Reproduces Figure 4(b): FPAU energy reduction across schemes and swap
// modes over the floating point suite.
#include "bench/fig4_common.h"
#include "stats/paper_ref.h"

int main(int argc, char** argv) {
  using namespace mrisc;
  const auto suite = workloads::fp_suite(bench::suite_config());
  bench::run_figure4(suite, isa::FuClass::kFpau,
                     "Figure 4(b): FPAU energy reduction (%)",
                     stats::kPaperFpauLut4HwSwap, bench::parse_jobs(argc, argv));
  return 0;
}
