// Reproduces section 5's hardware cost argument: two-level synthesis of the
// steering LUT plus the select/forward network, for 8- and 32-entry
// reservation stations (paper: 58 gates / 6 levels and 130 gates / 8
// levels for the 4-bit LUT).
#include <cstdio>

#include "bench/bench_common.h"
#include "hwcost/routing_cost.h"
#include "stats/paper_ref.h"
#include "util/table.h"

int main() {
  using namespace mrisc;
  bench::ManifestScope manifest("bench_hwcost", 0);

  util::AsciiTable table({"Vector", "RS entries", "LUT gates", "LUT levels",
                          "select gates", "total gates", "total levels",
                          "paper"});
  const auto stats = stats::paper_case_stats(isa::FuClass::kIalu);
  for (const int bits : {2, 4, 8}) {
    const auto lut = steer::build_lut(stats, 4, bits);
    for (const int rs : {8, 32}) {
      const auto cost = hwcost::routing_logic_cost(lut, rs);
      std::string paper = "-";
      if (bits == 4 && rs == 8) paper = "58 gates / 6 levels";
      if (bits == 4 && rs == 32) paper = "130 gates / 8 levels";
      table.add_row({std::to_string(bits) + "-bit", std::to_string(rs),
                     std::to_string(cost.lut.total_gates()),
                     std::to_string(cost.lut.levels),
                     std::to_string(cost.select_gates),
                     std::to_string(cost.total_gates()),
                     std::to_string(cost.total_levels()), paper});
    }
  }
  std::puts(table.to_string("Section 5: routing control logic cost").c_str());

  const auto lut4 = steer::build_lut(stats, 4, 4);
  const auto c = hwcost::routing_logic_cost(lut4, 8);
  std::printf("\n4-bit LUT SOP: %d product terms, %d AND, %d OR, %d INV\n",
              c.lut.product_terms, c.lut.and_gates, c.lut.or_gates,
              c.lut.inverters);
  return 0;
}
