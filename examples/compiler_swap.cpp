// Compiler swapping walkthrough (section 4.4): profile a workload, run the
// binary-rewriting pass, show which instructions were reoriented and why,
// and measure the switching effect with and without the hardware scheme.
#include <cstdio>

#include "driver/experiment.h"
#include "isa/disasm.h"
#include "xform/profile.h"
#include "xform/swap_pass.h"

int main() {
  using namespace mrisc;

  const auto workload = workloads::make_ijpeg(workloads::SuiteConfig{0.5});
  isa::Program original = workload.assembled();
  isa::Program rewritten = original;

  const auto profile = xform::profile_program(original);
  const auto report = xform::compiler_swap_pass(rewritten, profile);
  std::printf("%s\n\n", report.summary().c_str());

  // Show the first few rewritten sites with their profiles.
  std::puts("pc    before                  after                   reason");
  int shown = 0;
  for (const auto& decision : report.decisions) {
    if (shown++ == 12) break;
    const char* reason =
        decision.reason == xform::SwapReason::kCaseRule    ? "case rule"
        : decision.reason == xform::SwapReason::kFracOrder ? "ones order"
                                                           : "booth ones";
    std::printf("%-5u %-23s %-23s %s\n", decision.pc,
                isa::disassemble(original.code[decision.pc], decision.pc).c_str(),
                isa::disassemble(rewritten.code[decision.pc], decision.pc).c_str(),
                reason);
  }

  // Energy effect: compiler swapping alone, and stacked on the 4-bit LUT.
  driver::ExperimentConfig base;
  base.scheme = driver::Scheme::kOriginal;
  const auto baseline = driver::run_workload(workload, base);

  auto measure = [&](driver::Scheme scheme, driver::SwapMode swap) {
    driver::ExperimentConfig config;
    config.scheme = scheme;
    config.swap = swap;
    return driver::reduction_pct(
        baseline, driver::run_workload(workload, config), isa::FuClass::kIalu);
  };

  std::printf("\nIALU switching reduction vs Original/no-swap:\n");
  std::printf("  compiler swap only:            %5.1f%%\n",
              measure(driver::Scheme::kOriginal, driver::SwapMode::kCompilerOnly));
  std::printf("  4-bit LUT, no swap:            %5.1f%%\n",
              measure(driver::Scheme::kLut4, driver::SwapMode::kNone));
  std::printf("  4-bit LUT + hardware swap:     %5.1f%%\n",
              measure(driver::Scheme::kLut4, driver::SwapMode::kHardware));
  std::printf("  4-bit LUT + hw + compiler:     %5.1f%%\n",
              measure(driver::Scheme::kLut4, driver::SwapMode::kHardwareCompiler));
  std::puts("\n(section 6: compiler swapping's benefit is mostly orthogonal"
            " to, and additive with, the hardware scheme)");
  return 0;
}
