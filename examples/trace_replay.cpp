// Record/replay workflow: record a workload's dynamic trace once, then
// replay it through the timing core under several steering schemes without
// re-executing the program - the way trace-driven power studies iterate on
// microarchitecture knobs. Demonstrates TraceWriter, decode-once loading via
// TraceBuffer/MemoryTraceSource and manual policy wiring (everything the
// driver does, spelled out).
#include <cstdio>
#include <string>

#include "power/energy.h"
#include "sim/emulator.h"
#include "sim/ooo.h"
#include "sim/trace_buffer.h"
#include "sim/trace_io.h"
#include "stats/paper_ref.h"
#include "steer/lut.h"
#include "steer/policies.h"
#include "workloads/workload.h"

int main() {
  using namespace mrisc;

  const auto workload = workloads::make_ijpeg(workloads::SuiteConfig{0.5});
  const std::string trace_path = "/tmp/mrisc_ijpeg.trc";

  // 1. Record once.
  {
    sim::Emulator emu(workload.assembled());
    sim::EmulatorTraceSource source(emu);
    sim::TraceWriter writer(trace_path);
    const auto n = writer.write_all(source);
    std::printf("recorded %llu dynamic instructions -> %s\n",
                static_cast<unsigned long long>(n), trace_path.c_str());
  }

  // 2. Decode the trace file once; every replay below is a pointer bump over
  //    the same flat record vector (no per-variant re-deserialization).
  const sim::TraceBuffer trace = sim::TraceBuffer::load(trace_path);

  // 3. Replay under three schemes; the functional program never runs again.
  struct Variant {
    const char* name;
    sim::SteeringPolicy* policy;
  };
  steer::FcfsSteering original;
  steer::LutSteering lut(
      steer::build_lut(stats::paper_case_stats(isa::FuClass::kIalu), 4, 4),
      steer::SwapConfig::hardware_for(isa::FuClass::kIalu));
  steer::FullHamSteering fullham(steer::SwapConfig::explore());

  std::uint64_t baseline_bits = 0;
  for (const Variant& variant :
       {Variant{"Original (FCFS)", &original},
        Variant{"4-bit LUT + hw swap", &lut},
        Variant{"Full Ham (bound)", &fullham}}) {
    sim::MemoryTraceSource source(trace);
    sim::OooCore core(sim::OooConfig{}, source);
    core.set_policy(isa::FuClass::kIalu, variant.policy);
    power::EnergyAccountant energy;
    core.add_listener(&energy);
    core.run();

    const auto bits = energy.cls(isa::FuClass::kIalu).switched_bits;
    if (baseline_bits == 0) baseline_bits = bits;
    std::printf("%-22s IALU switched bits %-10llu (%.1f%% reduction), "
                "%llu cycles\n",
                variant.name, static_cast<unsigned long long>(bits),
                100.0 * (1.0 - static_cast<double>(bits) /
                                   static_cast<double>(baseline_bits)),
                static_cast<unsigned long long>(core.stats().cycles));
  }
  std::remove(trace_path.c_str());
  return 0;
}
