// Quickstart: assemble a small mrisc program, run it through the
// out-of-order core with the paper's 4-bit-LUT steering, and print the
// switching-energy numbers. Start here to see the whole API surface:
// assembler -> emulator/trace -> OoO core -> steering policy -> energy.
#include <cstdio>

#include "isa/assembler.h"
#include "power/energy.h"
#include "sim/emulator.h"
#include "sim/ooo.h"
#include "stats/paper_ref.h"
#include "steer/lut.h"

int main() {
  using namespace mrisc;

  // 1. A tiny program: sum the integers 1..1000 and print the result.
  const isa::Program program = isa::assemble(R"(
      li r1, 0          # sum
      li r2, 1          # i
      li r3, 1000
  loop:
      add r1, r1, r2
      addi r2, r2, 1
      ble r2, r3, loop
      out r1
      halt
  )");

  // 2. Functional emulator wrapped as a streaming trace source.
  sim::Emulator emu(program);
  sim::EmulatorTraceSource source(emu);

  // 3. Out-of-order core: the paper's machine (4 IALUs, 4 FPAUs, ...).
  sim::OooCore core(sim::OooConfig{}, source);

  // 4. Steering: a 4-bit LUT built from the paper's Table 1/2 statistics,
  //    with the hardware swap rule for integer units (swap case 01).
  steer::LutSteering steering(
      steer::build_lut(stats::paper_case_stats(isa::FuClass::kIalu), 4, 4),
      steer::SwapConfig::hardware_for(isa::FuClass::kIalu));
  core.set_policy(isa::FuClass::kIalu, &steering);

  // 5. Energy accounting: Hamming distance of successive FU inputs.
  power::EnergyAccountant accountant;
  core.add_listener(&accountant);

  core.run();

  std::printf("program output: %lld (expected 500500)\n",
              static_cast<long long>(emu.output().at(0).as_int()));
  std::printf("cycles: %llu, instructions: %llu, IPC %.2f\n",
              static_cast<unsigned long long>(core.stats().cycles),
              static_cast<unsigned long long>(core.stats().committed),
              core.stats().ipc());
  const auto& ialu = accountant.cls(isa::FuClass::kIalu);
  std::printf("IALU: %llu ops, %llu switched bits (%.2f bits/op, %.3g J)\n",
              static_cast<unsigned long long>(ialu.ops),
              static_cast<unsigned long long>(ialu.switched_bits),
              accountant.bits_per_op(isa::FuClass::kIalu),
              accountant.joules(isa::FuClass::kIalu));
  return 0;
}
