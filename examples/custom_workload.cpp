// Bring-your-own-workload: write mrisc assembly inline (or generate it),
// run it under two steering schemes, and inspect Table-1-style operand
// statistics for your own code. This is the path a user takes to evaluate
// the technique on their kernel of interest.
#include <cstdio>
#include <string>

#include "driver/experiment.h"
#include "stats/report.h"

int main() {
  using namespace mrisc;

  // A saturating 8-tap FIR filter over a byte stream - typical embedded
  // integer code with small positive samples and signed coefficients.
  workloads::Workload workload;
  workload.name = "fir8";
  workload.source = R"(
      li r1, 0x1234        # lcg state
      li r2, 0x41C64E6D
      la r3, coef
      li r4, 0             # checksum
      li r10, 4000         # samples
  sample:
      mul r1, r1, r2
      addi r1, r1, 12345
      srli r5, r1, 24      # sample byte
      # shift the delay line (8 words after 'line')
      la r6, line
      li r7, 7
  shift:
      slli r8, r7, 2
      add r9, r6, r8
      lw r11, -4(r9)
      sw r11, 0(r9)
      addi r7, r7, -1
      bne r7, r0, shift
      sw r5, 0(r6)
      # dot product with the coefficients
      li r12, 0            # acc
      li r7, 0
  tap:
      slli r8, r7, 2
      add r9, r6, r8
      lw r11, 0(r9)
      add r13, r3, r8
      lw r14, 0(r13)
      mul r15, r11, r14
      add r12, r12, r15
      addi r7, r7, 1
      slti r8, r7, 8
      bne r8, r0, tap
      add r4, r4, r12
      addi r10, r10, -1
      bne r10, r0, sample
      out r4
      halt
  .data
  coef: .word 3, -1, 4, -1, 5, -9, 2, -6
  line: .space 36
  )";
  // No reference model: disable output verification for ad-hoc programs.

  driver::ExperimentConfig original;
  original.scheme = driver::Scheme::kOriginal;
  original.verify_outputs = false;
  stats::BitPatternCollector patterns;
  const auto base = driver::run_workload(workload, original, &patterns);

  driver::ExperimentConfig lut;
  lut.scheme = driver::Scheme::kLut4;
  lut.swap = driver::SwapMode::kHardware;
  lut.verify_outputs = false;
  const auto steered = driver::run_workload(workload, lut);

  std::puts(stats::render_table1(patterns, isa::FuClass::kIalu).c_str());
  std::printf("IALU switched bits: %llu -> %llu (%.1f%% reduction) with the "
              "4-bit LUT + hardware swapping\n",
              static_cast<unsigned long long>(base.ialu.switched_bits),
              static_cast<unsigned long long>(steered.ialu.switched_bits),
              driver::reduction_pct(base, steered, isa::FuClass::kIalu));
  std::printf("instructions: %llu, IPC %.2f\n",
              static_cast<unsigned long long>(base.pipeline.committed),
              base.pipeline.ipc());
  return 0;
}
