// Steering study: compare every shipped scheme (the paper's plus the
// PC-hash and round-robin extensions) on one SPEC95-like workload and print
// the Figure-4-style reductions, plus the per-scheme bits/op. Shows the
// experiment-driver API (the one the bench binaries use) on a single
// workload.
#include <cstdio>

#include "driver/experiment.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mrisc;

  // Pick a workload by name (default: compress).
  const std::string name = argc > 1 ? argv[1] : "compress";
  workloads::Workload workload;
  bool found = false;
  for (auto& w : workloads::full_suite()) {
    if (w.name == name) {
      workload = std::move(w);
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    std::fprintf(stderr, "available:");
    for (const auto& w : workloads::full_suite())
      std::fprintf(stderr, " %s", w.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  const auto cls =
      workload.floating_point ? isa::FuClass::kFpau : isa::FuClass::kIalu;

  driver::ExperimentConfig base;
  base.scheme = driver::Scheme::kOriginal;
  const auto original = driver::run_workload(workload, base);

  util::AsciiTable table(
      {"Scheme", "bits/op", "reduction", "+hw swap", "+hw+compiler"});
  for (const auto scheme : driver::kAllSchemesExtended) {
    std::vector<std::string> row{driver::to_string(scheme)};
    bool first = true;
    for (const auto swap : driver::kAllSwapModes) {
      driver::ExperimentConfig config;
      config.scheme = scheme;
      config.swap = swap;
      const auto result = driver::run_workload(workload, config);
      if (first) {
        const auto& e = result.of(cls);
        row.push_back(util::fmt_fixed(
            e.ops ? static_cast<double>(e.switched_bits) / e.ops : 0, 2));
        first = false;
      }
      row.push_back(
          util::fmt_pct(driver::reduction_pct(original, result, cls)));
    }
    table.add_row(std::move(row));
  }
  std::puts(table
                .to_string("Steering schemes on '" + workload.name + "' (" +
                           isa::to_string(cls) + ")")
                .c_str());
  return 0;
}
